"""Expression evaluation: values and short-circuit work accounting."""

import numpy as np
import pytest

from repro.db.exec.stats import ExprCounters
from repro.db.expr import Batch, evaluate_predicate, evaluate_scalar
from repro.db.errors import ExecutionError, TypeMismatchError
from repro.db.sql.parser import parse_expression
from repro.db.types import Column, DataType


def make_batch() -> Batch:
    cols = {
        "t.x": Column.from_values(DataType.INT64, [1, 2, 3, 4, 5]),
        "t.y": Column.from_values(DataType.FLOAT64,
                                  [1.0, 4.0, 9.0, 16.0, 25.0]),
        "t.s": Column.from_values(DataType.STRING,
                                  ["a", "b", "a", "c", "a"]),
        "t.d": Column.from_values(
            DataType.DATE,
            ["1994-01-01", "1994-06-01", "1995-01-01", "1995-06-01",
             "1996-01-01"],
        ),
    }
    return Batch(cols, 5)


def eval_pred(sql: str, batch: Batch) -> tuple[list[bool], ExprCounters]:
    counters = ExprCounters()
    mask = evaluate_predicate(parse_expression(sql), batch, counters)
    return list(mask), counters


class TestValues:
    def test_comparisons(self):
        batch = make_batch()
        mask, _ = eval_pred("t.x > 3", batch)
        assert mask == [False, False, False, True, True]

    def test_string_equality_via_codes(self):
        batch = make_batch()
        mask, _ = eval_pred("t.s = 'a'", batch)
        assert mask == [True, False, True, False, True]

    def test_missing_string_literal_matches_nothing(self):
        batch = make_batch()
        mask, _ = eval_pred("t.s = 'zebra'", batch)
        assert mask == [False] * 5

    def test_date_comparison(self):
        batch = make_batch()
        mask, _ = eval_pred("t.d >= DATE '1995-01-01'", batch)
        assert mask == [False, False, True, True, True]

    def test_between(self):
        batch = make_batch()
        mask, _ = eval_pred("t.x BETWEEN 2 AND 4", batch)
        assert mask == [False, True, True, True, False]

    def test_in_list(self):
        batch = make_batch()
        mask, _ = eval_pred("t.x IN (1, 5, 9)", batch)
        assert mask == [True, False, False, False, True]

    def test_not(self):
        batch = make_batch()
        mask, _ = eval_pred("NOT t.x = 3", batch)
        assert mask == [True, True, False, True, True]

    def test_arithmetic_scalar(self):
        batch = make_batch()
        counters = ExprCounters()
        values = evaluate_scalar(
            parse_expression("t.x * 2 + 1"), batch, counters
        )
        assert list(values) == [3, 5, 7, 9, 11]
        assert counters.arithmetic_ops == 10  # two ops x five rows

    def test_division(self):
        batch = make_batch()
        counters = ExprCounters()
        values = evaluate_scalar(
            parse_expression("t.y / t.x"), batch, counters
        )
        assert list(values) == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_string_in_numeric_context_rejected(self):
        batch = make_batch()
        with pytest.raises(TypeMismatchError):
            evaluate_scalar(
                parse_expression("t.s + 1"), batch, ExprCounters()
            )

    def test_aggregate_outside_aggregation_rejected(self):
        batch = make_batch()
        with pytest.raises(ExecutionError):
            evaluate_scalar(
                parse_expression("SUM(t.x)"), batch, ExprCounters()
            )

    def test_unknown_column(self):
        batch = make_batch()
        with pytest.raises(ExecutionError):
            eval_pred("t.nope = 1", batch)


class TestShortCircuitAccounting:
    def test_single_comparison_counts_all_rows(self):
        batch = make_batch()
        _, counters = eval_pred("t.x = 3", batch)
        assert counters.comparisons == 5

    def test_or_charges_right_side_only_for_left_misses(self):
        batch = make_batch()
        # left matches rows 1,3,5 (s='a'); right evaluated on 2 rows.
        _, counters = eval_pred("t.s = 'a' OR t.x = 2", batch)
        assert counters.comparisons == 5 + 2

    def test_and_charges_right_side_only_for_left_hits(self):
        batch = make_batch()
        # left true on rows 4,5; right evaluated on those 2 only.
        _, counters = eval_pred("t.x > 3 AND t.y > 20", batch)
        assert counters.comparisons == 5 + 2

    def test_or_chain_first_match_position(self):
        """A row stops at its first matching disjunct."""
        batch = make_batch()
        # x=1 matches first (1 cmp); x=2 matches second (2 cmps);
        # x=3 matches third (3); x=4,5 match nothing (3 each).
        _, counters = eval_pred(
            "t.x = 1 OR t.x = 2 OR t.x = 3", batch
        )
        assert counters.comparisons == 1 + 2 + 3 + 3 + 3

    def test_in_list_short_circuits(self):
        batch = make_batch()
        _, counters = eval_pred("t.x IN (1, 2, 3)", batch)
        assert counters.comparisons == 1 + 2 + 3 + 3 + 3

    def test_between_counts_upper_bound_conditionally(self):
        batch = make_batch()
        # lower bound: 5 cmps; >=2 passes on 4 rows -> 4 upper cmps.
        _, counters = eval_pred("t.x BETWEEN 2 AND 4", batch)
        assert counters.comparisons == 5 + 4

    def test_not_does_not_add_comparisons(self):
        batch = make_batch()
        _, plain = eval_pred("t.x = 3", batch)
        _, negated = eval_pred("NOT t.x = 3", batch)
        assert plain.comparisons == negated.comparisons

    def test_nested_or_of_ands(self):
        batch = make_batch()
        # (x>3 AND y>20) OR s='a'
        # left-and: 5 + 2 = 7 cmps, true on row 5 only...
        # x>3: rows 4,5; y>20 on those: row5 -> left true rows {5}
        # right evaluated on remaining 4 rows.
        _, counters = eval_pred(
            "(t.x > 3 AND t.y > 20) OR t.s = 'a'", batch
        )
        assert counters.comparisons == 7 + 4


class TestBatch:
    def test_unqualified_unique_suffix_resolves(self):
        batch = make_batch()
        mask, _ = eval_pred("x = 2", batch)
        assert mask == [False, True, False, False, False]

    def test_ambiguous_unqualified_rejected(self):
        cols = {
            "a.k": Column.from_values(DataType.INT64, [1]),
            "b.k": Column.from_values(DataType.INT64, [1]),
        }
        batch = Batch(cols, 1)
        with pytest.raises(ExecutionError):
            eval_pred("k = 1", batch)

    def test_merge_rejects_duplicates_and_length_mismatch(self):
        a = Batch({"t.x": Column.from_values(DataType.INT64, [1])}, 1)
        b = Batch({"t.x": Column.from_values(DataType.INT64, [2])}, 1)
        with pytest.raises(ExecutionError):
            a.merged_with(b)
        c = Batch({"u.y": Column.from_values(DataType.INT64, [1, 2])}, 2)
        with pytest.raises(ExecutionError):
            a.merged_with(c)

    def test_take(self):
        batch = make_batch()
        taken = batch.take(np.array([4, 0]))
        assert taken.n_rows == 2
        assert list(taken.columns["t.x"].raw()) == [5, 1]
