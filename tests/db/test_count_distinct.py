"""COUNT(DISTINCT ...) aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db.engine import Database
from repro.db.errors import SqlSyntaxError
from repro.db.profiles import mysql_profile
from repro.db.schema import ColumnDef, TableSchema
from repro.db.sql.parser import parse_expression
from repro.db.types import DataType


@pytest.fixture()
def db() -> Database:
    rng = np.random.default_rng(11)
    n = 300
    db = Database(mysql_profile())
    db.create_table(
        TableSchema("t", [
            ColumnDef("g", DataType.STRING),
            ColumnDef("v", DataType.INT64),
        ]),
        {
            "g": [f"g{i % 4}" for i in range(n)],
            "v": rng.integers(0, 12, n).tolist(),
        },
    )
    return db


class TestParsing:
    def test_round_trip(self):
        expr = parse_expression("COUNT(DISTINCT x)")
        assert expr.distinct
        assert parse_expression(expr.to_sql()) == expr

    def test_distinct_only_in_count(self):
        with pytest.raises(SqlSyntaxError):
            parse_expression("SUM(DISTINCT x)")

    def test_plain_count_not_distinct(self):
        assert not parse_expression("COUNT(x)").distinct


class TestSemantics:
    def test_matches_python_reference(self, db):
        result = db.execute(
            "SELECT g, COUNT(DISTINCT v) AS d FROM t GROUP BY g "
            "ORDER BY g"
        )
        table = db.catalog.table("t")
        by_group: dict[str, set] = {}
        for i in range(table.row_count):
            g, v = table.row(i)
            by_group.setdefault(g, set()).add(v)
        expected = [(g, len(vs)) for g, vs in sorted(by_group.items())]
        assert result.rows() == expected

    def test_global_distinct(self, db):
        got = db.execute("SELECT COUNT(DISTINCT v) AS d FROM t").scalar()
        table = db.catalog.table("t")
        expected = len({table.row(i)[1] for i in range(table.row_count)})
        assert got == expected

    def test_distinct_on_string_column(self, db):
        got = db.execute("SELECT COUNT(DISTINCT g) AS d FROM t").scalar()
        assert got == 4

    def test_distinct_vs_plain_count(self, db):
        rows = db.execute(
            "SELECT g, COUNT(DISTINCT v) AS d, COUNT(v) AS n "
            "FROM t GROUP BY g"
        ).rows()
        for _, d, n in rows:
            assert 0 < d <= n

    def test_empty_selection(self, db):
        got = db.execute(
            "SELECT COUNT(DISTINCT v) AS d FROM t WHERE v > 1000"
        ).scalar()
        assert got == 0

    def test_distinct_and_plain_are_separate_aggregates(self, db):
        """Same arg with/without DISTINCT must not be deduplicated."""
        rows = db.execute(
            "SELECT COUNT(DISTINCT v) AS d, COUNT(v) AS n FROM t"
        ).rows()
        d, n = rows[0]
        assert d < n

    @given(values=st.lists(st.integers(0, 5), min_size=1, max_size=50))
    @settings(max_examples=25)
    def test_property_random_values(self, values):
        db = Database(mysql_profile())
        db.create_table(
            TableSchema("u", [ColumnDef("v", DataType.INT64)]),
            {"v": values},
        )
        got = db.execute(
            "SELECT COUNT(DISTINCT v) AS d FROM u"
        ).scalar()
        assert got == len(set(values))
