"""Energy-aware plan costing and LIKE support."""

import pytest

from repro.db.engine import Database
from repro.db.plan.cost import (
    CostEstimate,
    CostWeights,
    EDP_BALANCED,
    ENERGY_OPTIMAL,
    TIME_OPTIMAL,
)
from repro.db.plan.costing import PlanCoster, rank_plans
from repro.db.profiles import commercial_profile, mysql_profile
from repro.db.schema import ColumnDef, TableSchema
from repro.db.types import DataType
from repro.hardware.profiles import paper_sut


@pytest.fixture()
def db() -> Database:
    db = Database(mysql_profile())
    db.create_table(
        TableSchema("t", [
            ColumnDef("k", DataType.INT64),
            ColumnDef("g", DataType.INT64),
            ColumnDef("s", DataType.STRING),
        ]),
        {
            "k": list(range(2000)),
            "g": [i % 20 for i in range(2000)],
            "s": [f"name_{i % 5:02d}" for i in range(2000)],
        },
    )
    return db


class TestCostEstimate:
    def test_algebra(self):
        a = CostEstimate(1.0, 10.0)
        b = CostEstimate(2.0, 5.0)
        total = a + b
        assert total.time_s == 3.0 and total.energy_j == 15.0
        assert a.edp == 10.0
        assert a.weighted(1.0, 0.0) == 1.0
        assert a.weighted(0.0, 1.0) == 10.0

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            CostWeights(-1.0, 0.0)
        with pytest.raises(ValueError):
            CostWeights(0.0, 0.0)
        assert TIME_OPTIMAL.w_energy == 0.0
        assert ENERGY_OPTIMAL.w_time == 0.0
        assert EDP_BALANCED.w_time == EDP_BALANCED.w_energy


class TestPlanCoster:
    def test_estimate_positive_and_ordered(self, db):
        plan_small, cost_small = db.estimate_cost(
            "SELECT k FROM t WHERE g = 3"
        )
        plan_big, cost_big = db.estimate_cost(
            "SELECT g, COUNT(*) AS n FROM t GROUP BY g ORDER BY n"
        )
        assert cost_small.time_s > 0 and cost_small.energy_j > 0
        # More operators over the same scan cost more.
        assert cost_big.weighted(1, 0) > 0

    def test_estimate_tracks_measurement_order(self, db):
        """A cheap query must be estimated cheaper than an expensive
        one, and the estimate should be within 3x of measurement."""
        sut = paper_sut()
        coster = PlanCoster(db.profile, sut)
        cheap_sql = "SELECT k FROM t WHERE k = 17"
        costly_sql = (
            "SELECT g, SUM(k) AS s FROM t GROUP BY g ORDER BY s DESC"
        )
        cheap = coster.cost(db.plan(cheap_sql))
        costly = coster.cost(db.plan(costly_sql))
        assert cheap.time_s < costly.time_s

        result = db.execute(cheap_sql)
        trace = db.trace_for(result)
        measured = sut.run(trace, db.workload_class)
        assert cheap.time_s == pytest.approx(
            measured.duration_s, rel=2.0
        )
        assert cheap.energy_j == pytest.approx(
            measured.cpu_joules, rel=2.0
        )

    def test_disk_profile_estimates_include_io(self):
        db = Database(commercial_profile(0.01))
        db.create_table(
            TableSchema("u", [ColumnDef("a", DataType.INT64)]),
            {"a": list(range(10_000))},
        )
        db.warm()
        _, mem_cost = Database(mysql_profile()), None
        _, cost = db.estimate_cost("SELECT a FROM u WHERE a > 5")
        # stall + temp I/O terms make disk-profile estimates slower per
        # row than the same pure-CPU work.
        assert cost.time_s > 0

    def test_rank_plans(self, db):
        sut = paper_sut()
        coster = PlanCoster(db.profile, sut)
        plans = [
            db.plan("SELECT k FROM t WHERE k = 17"),
            db.plan("SELECT g, COUNT(*) AS n FROM t GROUP BY g"),
        ]
        ranked = rank_plans(plans, coster, TIME_OPTIMAL)
        assert ranked[0][1].time_s <= ranked[1][1].time_s


class TestLike:
    def test_like_prefix(self, db):
        result = db.execute("SELECT k FROM t WHERE s LIKE 'name_0%'")
        # s in name_00..name_04: all rows match the prefix
        assert result.row_count == 2000

    def test_like_exact_wildcard(self, db):
        result = db.execute("SELECT k FROM t WHERE s LIKE 'name#_03'"
                            .replace("#", ""))
        assert result.row_count == 400  # every 5th of 2000

    def test_like_underscore(self, db):
        result = db.execute("SELECT k FROM t WHERE s LIKE 'name_0_'")
        assert result.row_count == 2000

    def test_not_like(self, db):
        result = db.execute(
            "SELECT k FROM t WHERE s NOT LIKE 'name_00'"
        )
        assert result.row_count == 1600

    def test_like_counts_comparisons(self, db):
        result = db.execute("SELECT k FROM t WHERE s LIKE '%03'")
        assert result.stats.total_comparisons == 2000

    def test_like_round_trip(self):
        from repro.db.sql.ast import Like
        from repro.db.sql.parser import parse_expression
        expr = parse_expression("s LIKE 'abc%'")
        assert isinstance(expr, Like)
        assert parse_expression(expr.to_sql()) == expr

    def test_like_on_numeric_rejected(self, db):
        from repro.db.errors import TypeMismatchError
        with pytest.raises(TypeMismatchError):
            db.execute("SELECT k FROM t WHERE k LIKE '1%'")

    def test_like_regex_chars_escaped(self, db):
        # Dots in a pattern are literals, not regex wildcards.
        result = db.execute("SELECT k FROM t WHERE s LIKE 'name.0.'")
        assert result.row_count == 0
