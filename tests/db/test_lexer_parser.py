"""SQL lexer and parser, including hypothesis round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.db.errors import SqlSyntaxError
from repro.db.sql import ast
from repro.db.sql.lexer import TokenType, tokenize
from repro.db.sql.parser import parse, parse_expression


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a, b FROM t WHERE a >= 1.5")
        kinds = [t.type for t in tokens]
        assert kinds[-1] is TokenType.EOF
        values = [t.value for t in tokens[:-1]]
        assert values == [
            "select", "a", ",", "b", "from", "t", "where", "a", ">=", "1.5",
        ]

    def test_string_escaping(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_line_comment(self):
        tokens = tokenize("SELECT a -- comment\nFROM t")
        assert [t.value for t in tokens[:-1]] == ["select", "a", "from", "t"]

    def test_qualified_name_not_a_float(self):
        tokens = tokenize("t1.col")
        assert [t.value for t in tokens[:-1]] == ["t1", ".", "col"]

    def test_scientific_notation(self):
        tokens = tokenize("1e3 2.5e-2")
        assert tokens[0].value == "1e3"
        assert tokens[1].value == "2.5e-2"

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT #")


class TestParser:
    def test_simple_select(self):
        select = parse("SELECT a, b AS bee FROM t WHERE a = 1")
        assert len(select.items) == 2
        assert select.items[1].alias == "bee"
        assert isinstance(select.where, ast.Comparison)

    def test_operator_precedence(self):
        expr = parse_expression("a + b * c")
        assert isinstance(expr, ast.Arithmetic) and expr.op == "+"
        assert isinstance(expr.right, ast.Arithmetic)
        assert expr.right.op == "*"

    def test_and_binds_tighter_than_or(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, ast.Or)
        assert isinstance(expr.right, ast.And)

    def test_not_in(self):
        expr = parse_expression("a NOT IN (1, 2)")
        assert isinstance(expr, ast.Not)
        assert isinstance(expr.operand, ast.InList)

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 5")
        assert isinstance(expr, ast.Between)

    def test_date_literal(self):
        expr = parse_expression("d >= DATE '1994-01-01'")
        assert isinstance(expr.right, ast.DateLiteral)
        assert expr.right.iso == "1994-01-01"

    def test_count_star_and_aggregates(self):
        select = parse(
            "SELECT COUNT(*), SUM(x), AVG(y) FROM t GROUP BY g"
        )
        funcs = [item.expr.name for item in select.items]
        assert funcs == ["count", "sum", "avg"]
        assert select.items[0].expr.arg is None

    def test_join_normalized_to_where(self):
        select = parse(
            "SELECT a FROM t1 JOIN t2 ON t1.k = t2.k WHERE t1.a > 0"
        )
        conjuncts = ast.conjuncts(select.where)
        assert len(conjuncts) == 2

    def test_order_limit_distinct(self):
        select = parse(
            "SELECT DISTINCT a FROM t ORDER BY a DESC, b LIMIT 7"
        )
        assert select.distinct
        assert select.order_by[0].descending
        assert not select.order_by[1].descending
        assert select.limit == 7

    def test_table_aliases(self):
        select = parse("SELECT e.a FROM emp e, dept AS d")
        assert select.tables[0].binding == "e"
        assert select.tables[1].binding == "d"

    def test_unary_minus(self):
        expr = parse_expression("-x + 1")
        assert isinstance(expr.left, ast.Negate)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t extra! tokens")

    def test_missing_from_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a")

    def test_star(self):
        select = parse("SELECT * FROM t")
        assert select.items[0].expr == ast.ColumnRef("*")


# -- hypothesis round-trips ------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "col1", "val"])
# Non-negative numbers only: "-1" round-trips as Negate(Literal(1)).
_literals = st.one_of(
    st.integers(min_value=0, max_value=1000).map(ast.Literal),
    st.sampled_from([0.5, 1.25, 3.75]).map(ast.Literal),
    st.sampled_from(["x", "asia", "it's"]).map(ast.Literal),
)


def _exprs(depth: int = 2) -> st.SearchStrategy[ast.Expr]:
    base = st.one_of(
        _names.map(ast.ColumnRef),
        _literals,
    )
    if depth == 0:
        return base
    sub = _exprs(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["=", "<", ">=", "<>"]),
                  _names.map(ast.ColumnRef), _literals).map(
            lambda t: ast.Comparison(*t)
        ),
        st.tuples(sub, sub).map(lambda t: _bool_pair(ast.And, t)),
        st.tuples(sub, sub).map(lambda t: _bool_pair(ast.Or, t)),
    )


def _bool_pair(node, pair):
    left = _as_bool(pair[0])
    right = _as_bool(pair[1])
    return node(left, right)


def _as_bool(expr: ast.Expr) -> ast.Expr:
    if isinstance(expr, (ast.And, ast.Or, ast.Comparison, ast.Not)):
        return expr
    return ast.Comparison("=", ast.ColumnRef("a"), ast.Literal(1))


class TestRoundTrip:
    @given(expr=_exprs())
    def test_expression_round_trip(self, expr):
        """parse(expr.to_sql()) == expr for boolean/scalar trees."""
        sql = expr.to_sql()
        reparsed = parse_expression(sql)
        assert reparsed == expr

    @given(
        cols=st.lists(_names, min_size=1, max_size=3, unique=True),
        table=st.sampled_from(["t", "lineitem"]),
        limit=st.one_of(st.none(), st.integers(1, 99)),
    )
    def test_select_round_trip(self, cols, table, limit):
        select = ast.Select(
            items=tuple(ast.SelectItem(ast.ColumnRef(c)) for c in cols),
            tables=(ast.TableRef(table),),
            where=ast.Comparison("=", ast.ColumnRef(cols[0]),
                                 ast.Literal(1)),
            limit=limit,
        )
        assert parse(select.to_sql()) == select
