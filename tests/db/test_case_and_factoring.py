"""CASE WHEN expressions and OR common-factor extraction (Q12/Q14/Q19)."""

import pytest

from repro.db.engine import Database
from repro.db.errors import SqlSyntaxError
from repro.db.exec.stats import ExprCounters
from repro.db.expr import Batch, evaluate_scalar
from repro.db.plan.logical import factor_common_conjuncts
from repro.db.profiles import mysql_profile
from repro.db.schema import ColumnDef, TableSchema
from repro.db.sql import ast
from repro.db.sql.parser import parse_expression
from repro.db.types import Column, DataType


def _batch() -> Batch:
    return Batch({
        "t.x": Column.from_values(DataType.INT64, [1, 2, 3, 4, 5]),
        "t.s": Column.from_values(DataType.STRING,
                                  ["a", "b", "a", "c", "a"]),
    }, 5)


class TestCaseExpression:
    def test_parse_and_round_trip(self):
        expr = parse_expression(
            "CASE WHEN x > 3 THEN 1 WHEN x > 1 THEN 2 ELSE 0 END"
        )
        assert isinstance(expr, ast.CaseWhen)
        assert len(expr.whens) == 2
        assert parse_expression(expr.to_sql()) == expr

    def test_case_without_else_defaults_to_zero(self):
        counters = ExprCounters()
        values = evaluate_scalar(
            parse_expression("CASE WHEN t.x > 3 THEN 7 END"),
            _batch(), counters,
        )
        assert list(values) == [0, 0, 0, 7, 7]

    def test_first_matching_branch_wins(self):
        counters = ExprCounters()
        values = evaluate_scalar(
            parse_expression(
                "CASE WHEN t.x > 1 THEN 10 WHEN t.x > 3 THEN 20 "
                "ELSE 30 END"
            ),
            _batch(), counters,
        )
        assert list(values) == [30, 10, 10, 10, 10]

    def test_branch_conditions_short_circuit_accounting(self):
        counters = ExprCounters()
        evaluate_scalar(
            parse_expression(
                "CASE WHEN t.x > 3 THEN 1 WHEN t.s = 'a' THEN 2 END"
            ),
            _batch(), counters,
        )
        # first condition on 5 rows; second only on the 3 non-matching
        assert counters.comparisons == 5 + 3

    def test_case_needs_when(self):
        with pytest.raises(SqlSyntaxError):
            parse_expression("CASE ELSE 1 END")

    def test_nested_case_values(self):
        counters = ExprCounters()
        values = evaluate_scalar(
            parse_expression(
                "CASE WHEN t.x > 2 THEN t.x * 10 ELSE t.x END"
            ),
            _batch(), counters,
        )
        assert list(values) == [1, 2, 30, 40, 50]


class TestCaseInQueries:
    @pytest.fixture()
    def db(self) -> Database:
        db = Database(mysql_profile())
        db.create_table(
            TableSchema("t", [
                ColumnDef("g", DataType.STRING),
                ColumnDef("v", DataType.INT64),
            ]),
            {"g": ["a", "a", "b", "b", "b"], "v": [1, 5, 2, 8, 3]},
        )
        return db

    def test_sum_of_case(self, db):
        result = db.execute(
            "SELECT g, SUM(CASE WHEN v > 2 THEN 1 ELSE 0 END) AS big "
            "FROM t GROUP BY g ORDER BY g"
        )
        assert result.rows() == [("a", 1.0), ("b", 2.0)]

    def test_case_ratio_of_aggregates(self, db):
        result = db.execute(
            "SELECT 100.0 * SUM(CASE WHEN v > 2 THEN v ELSE 0 END) "
            "/ SUM(v) AS pct FROM t"
        )
        assert result.scalar() == pytest.approx(100.0 * 16 / 19)

    def test_case_in_projection(self, db):
        result = db.execute(
            "SELECT CASE WHEN v > 4 THEN 1 ELSE 0 END AS flag "
            "FROM t ORDER BY v"
        )
        assert [r[0] for r in result.rows()] == [0, 0, 0, 1, 1]


class TestCommonFactorExtraction:
    def test_factoring_identity(self):
        expr = parse_expression(
            "(a = b AND x > 1) OR (a = b AND y > 2)"
        )
        factored = factor_common_conjuncts(expr)
        conjuncts = ast.conjuncts(factored)
        assert parse_expression("a = b") in conjuncts
        assert len(conjuncts) == 2

    def test_no_common_factor_unchanged(self):
        expr = parse_expression("(x > 1) OR (y > 2)")
        assert factor_common_conjuncts(expr) == expr

    def test_single_disjunct_unchanged(self):
        expr = parse_expression("a = b AND x > 1")
        assert factor_common_conjuncts(expr) == expr

    def test_all_common_drops_or_entirely(self):
        expr = parse_expression("(a = b) OR (a = b)")
        assert factor_common_conjuncts(expr) == parse_expression("a = b")


class TestNewQueriesSemantics:
    def test_q12_counts_partition_rows(self, mysql_db):
        from repro.workloads.tpch.queries import q12
        result = mysql_db.execute(q12())
        for _, high, low in result.rows():
            assert high >= 0 and low >= 0
        # high + low per mode equals the plain count for the same preds
        plain = mysql_db.execute(
            "SELECT l_shipmode, COUNT(*) AS n "
            "FROM orders, lineitem "
            "WHERE o_orderkey = l_orderkey "
            "AND l_shipmode IN ('MAIL', 'SHIP') "
            "AND l_commitdate < l_receiptdate "
            "AND l_shipdate < l_commitdate "
            "AND l_receiptdate >= DATE '1994-01-01' "
            "AND l_receiptdate < DATE '1995-01-01' "
            "GROUP BY l_shipmode ORDER BY l_shipmode"
        )
        for (mode, high, low), (mode2, n) in zip(
            result.rows(), plain.rows()
        ):
            assert mode == mode2
            assert high + low == n

    def test_q14_between_0_and_100(self, mysql_db):
        from repro.workloads.tpch.queries import q14
        value = mysql_db.execute(q14()).scalar()
        assert 0.0 < value < 100.0

    def test_q19_equals_sum_of_branches(self, mysql_db):
        """The factored disjunction returns exactly the sum of its
        (disjoint) branches run separately."""
        from repro.workloads.tpch.queries import q19
        total = mysql_db.execute(q19()).scalar()
        branch_sqls = [
            "SELECT SUM(l_extendedprice * (1 - l_discount)) AS r "
            "FROM lineitem, part WHERE p_partkey = l_partkey "
            f"AND p_brand = '{brand}' AND l_quantity >= {lo} "
            f"AND l_quantity <= {lo + 10} AND p_size BETWEEN 1 AND {hi}"
            for brand, lo, hi in (
                ("Brand#12", 1, 5), ("Brand#23", 10, 10),
                ("Brand#34", 20, 15),
            )
        ]
        parts = [mysql_db.execute(sql).scalar() for sql in branch_sqls]
        # Branches overlap only if a row satisfies two brands at once --
        # impossible (one brand per part), so the sum matches.
        assert total == pytest.approx(sum(parts), rel=1e-9)

    def test_q19_plan_has_equi_join(self, mysql_db):
        from repro.workloads.tpch.queries import q19
        text = mysql_db.explain(q19())
        assert "HashJoin" in text
