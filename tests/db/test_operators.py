"""Operator correctness against brute-force references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db.engine import Database
from repro.db.exec.operators import join_indices
from repro.db.profiles import mysql_profile
from repro.db.schema import ColumnDef, TableSchema
from repro.db.types import DataType


class TestJoinIndices:
    def test_simple(self):
        build = np.array([1, 2, 3])
        probe = np.array([2, 3, 4])
        b, p = join_indices(build, probe)
        pairs = sorted(zip(build[b], probe[p]))
        assert pairs == [(2, 2), (3, 3)]

    def test_duplicates_on_build_side(self):
        build = np.array([5, 5, 7])
        probe = np.array([5, 7, 7])
        b, p = join_indices(build, probe)
        pairs = sorted(zip(build[b], probe[p]))
        assert pairs == [(5, 5), (5, 5), (7, 7), (7, 7)]

    def test_empty_result(self):
        b, p = join_indices(np.array([1]), np.array([2]))
        assert len(b) == 0 and len(p) == 0

    @given(
        build=st.lists(st.integers(0, 8), max_size=30),
        probe=st.lists(st.integers(0, 8), max_size=30),
    )
    @settings(max_examples=60)
    def test_matches_nested_loop(self, build, probe):
        """join_indices produces exactly the nested-loop pair multiset."""
        build_arr = np.asarray(build, dtype=np.int64)
        probe_arr = np.asarray(probe, dtype=np.int64)
        b, p = join_indices(build_arr, probe_arr)
        got = sorted(zip(b.tolist(), p.tolist()))
        expected = sorted(
            (i, j)
            for i, bv in enumerate(build)
            for j, pv in enumerate(probe)
            if bv == pv
        )
        assert got == expected


@pytest.fixture()
def db() -> Database:
    rng = np.random.default_rng(7)
    db = Database(mysql_profile())
    n = 500
    db.create_table(
        TableSchema("facts", [
            ColumnDef("id", DataType.INT64),
            ColumnDef("grp", DataType.STRING),
            ColumnDef("val", DataType.FLOAT64),
            ColumnDef("qty", DataType.INT64),
        ]),
        {
            "id": list(range(n)),
            "grp": [f"g{i % 7}" for i in range(n)],
            "val": rng.uniform(0, 100, n).round(3).tolist(),
            "qty": rng.integers(1, 50, n).tolist(),
        },
    )
    db.create_table(
        TableSchema("dims", [
            ColumnDef("grp", DataType.STRING),
            ColumnDef("weight", DataType.FLOAT64),
        ]),
        {
            "grp": [f"g{i}" for i in range(7)],
            "weight": [float(i + 1) for i in range(7)],
        },
    )
    return db


def rows_of(db: Database, table: str) -> list[tuple]:
    t = db.catalog.table(table)
    return [t.row(i) for i in range(t.row_count)]


class TestAggregates:
    def test_sum_count_avg_min_max_vs_python(self, db):
        result = db.execute(
            "SELECT grp, SUM(val) AS s, COUNT(*) AS n, AVG(val) AS a, "
            "MIN(val) AS mn, MAX(val) AS mx FROM facts GROUP BY grp "
            "ORDER BY grp"
        )
        facts = rows_of(db, "facts")
        by_group: dict[str, list[float]] = {}
        for _, grp, val, _ in facts:
            by_group.setdefault(grp, []).append(val)
        expected = []
        for grp in sorted(by_group):
            vals = by_group[grp]
            expected.append((
                grp, sum(vals), len(vals), sum(vals) / len(vals),
                min(vals), max(vals),
            ))
        for got, want in zip(result.rows(), expected):
            assert got[0] == want[0]
            assert got[1] == pytest.approx(want[1])
            assert got[2] == want[2]
            assert got[3] == pytest.approx(want[3])
            assert got[4] == pytest.approx(want[4])
            assert got[5] == pytest.approx(want[5])

    def test_global_aggregate(self, db):
        result = db.execute("SELECT COUNT(*) AS n FROM facts")
        assert result.scalar() == 500

    def test_global_aggregate_on_empty_selection(self, db):
        result = db.execute(
            "SELECT COUNT(*) AS n, SUM(val) AS s FROM facts "
            "WHERE val < -1"
        )
        rows = result.rows()
        assert rows[0][0] == 0
        assert rows[0][1] == 0.0

    def test_aggregate_of_expression(self, db):
        result = db.execute(
            "SELECT SUM(val * 2) AS s FROM facts"
        )
        facts = rows_of(db, "facts")
        assert result.scalar() == pytest.approx(
            sum(2 * r[2] for r in facts)
        )

    def test_having(self, db):
        result = db.execute(
            "SELECT grp, COUNT(*) AS n FROM facts GROUP BY grp "
            "HAVING COUNT(*) > 70 ORDER BY grp"
        )
        for _, n in result.rows():
            assert n > 70


class TestJoins:
    def test_join_vs_python(self, db):
        result = db.execute(
            "SELECT f.id, d.weight FROM facts f, dims d "
            "WHERE f.grp = d.grp AND f.val > 90 ORDER BY f.id"
        )
        facts = rows_of(db, "facts")
        dims = {g: w for g, w in rows_of(db, "dims")}
        expected = sorted(
            (fid, dims[grp])
            for fid, grp, val, _ in facts if val > 90
        )
        got = [(r[0], r[1]) for r in result.rows()]
        assert got == expected

    def test_join_then_aggregate(self, db):
        result = db.execute(
            "SELECT d.weight, SUM(f.val) AS s FROM facts f, dims d "
            "WHERE f.grp = d.grp GROUP BY d.weight ORDER BY d.weight"
        )
        facts = rows_of(db, "facts")
        dims = {g: w for g, w in rows_of(db, "dims")}
        expected: dict[float, float] = {}
        for _, grp, val, _ in facts:
            expected[dims[grp]] = expected.get(dims[grp], 0.0) + val
        for weight, total in result.rows():
            assert total == pytest.approx(expected[weight])


class TestSortDistinctLimit:
    def test_multi_key_sort(self, db):
        result = db.execute(
            "SELECT grp, qty, id FROM facts ORDER BY grp, qty DESC, id"
        )
        rows = result.rows()
        keys = [(g, -q, i) for g, q, i in rows]
        assert keys == sorted(keys)

    def test_distinct(self, db):
        result = db.execute("SELECT DISTINCT grp FROM facts")
        values = sorted(r[0] for r in result.rows())
        assert values == [f"g{i}" for i in range(7)]

    def test_limit(self, db):
        result = db.execute(
            "SELECT id FROM facts ORDER BY id LIMIT 3"
        )
        assert [r[0] for r in result.rows()] == [0, 1, 2]

    def test_limit_larger_than_result(self, db):
        result = db.execute(
            "SELECT id FROM facts WHERE id < 2 LIMIT 100"
        )
        assert result.row_count == 2

    def test_order_by_expression_in_select(self, db):
        result = db.execute(
            "SELECT id, val * qty AS score FROM facts "
            "ORDER BY score DESC LIMIT 5"
        )
        scores = [r[1] for r in result.rows()]
        assert scores == sorted(scores, reverse=True)

    def test_limit_slices_batch(self, db):
        from repro.db.expr import Batch
        from repro.db.types import Column

        data = np.arange(10, dtype=np.int64)
        batch = Batch({"t.x": Column(DataType.INT64, data)}, 10)
        head = batch.head(3)
        assert head.n_rows == 3
        assert head.columns["t.x"].raw().tolist() == [0, 1, 2]
        # The slice owns its memory: a cached LIMIT result must not
        # pin the full pre-limit arrays alive.
        assert not np.shares_memory(head.columns["t.x"].raw(), data)
        assert batch.head(100).n_rows == 10
        # A programmatically built plan can carry a negative limit; it
        # degrades to an empty batch, never an inconsistent one.
        empty = batch.head(-2)
        assert empty.n_rows == 0
        assert len(empty.columns["t.x"]) == 0


class TestDescendingKey:
    def _dk(self):
        from repro.db.exec.operators import _descending_key
        return _descending_key

    def _assert_orders_descending(self, values):
        key = self._dk()(values)
        order = np.argsort(key, kind="stable")
        ranked = values[order]
        # Equivalent to the dense-rank reference implementation.
        _, ranks = np.unique(values, return_inverse=True)
        ref = np.argsort(-ranks, kind="stable")
        assert np.array_equal(order, ref), (ranked, values[ref])

    def test_float_keys_negate_directly(self):
        values = np.array([3.5, -1.0, 2.0, 3.5, 0.0])
        assert np.array_equal(self._dk()(values), -values)
        self._assert_orders_descending(values)

    def test_int_keys_negate_directly(self):
        values = np.array([5, -2, 9, 5], dtype=np.int64)
        assert np.array_equal(self._dk()(values), -values)
        self._assert_orders_descending(values)

    def test_nan_falls_back_to_ranks(self):
        values = np.array([1.0, np.nan, 2.0])
        key = self._dk()(values)
        # The rank detour treats NaN as the largest value, so DESC puts
        # it first; plain negation would flip it to last.  The fallback
        # preserves the established semantics.
        order = np.argsort(key, kind="stable")
        assert order[0] == 1
        self._assert_orders_descending(values)

    def test_int64_min_falls_back_to_ranks(self):
        lowest = np.iinfo(np.int64).min
        values = np.array([lowest, 0, 5], dtype=np.int64)
        key = self._dk()(values)
        order = np.argsort(key, kind="stable")
        assert values[order].tolist() == [5, 0, lowest]

    def test_string_keys_fall_back_to_ranks(self):
        values = np.array(["b", "a", "c", "a"], dtype=object)
        key = self._dk()(values)
        order = np.argsort(key, kind="stable")
        assert values[order].tolist() == ["c", "b", "a", "a"]

    def test_ties_remain_ties_for_minor_keys(self, db):
        result = db.execute(
            "SELECT qty, id FROM facts ORDER BY qty DESC, id"
        )
        rows = result.rows()
        keys = [(-q, i) for q, i in rows]
        assert keys == sorted(keys)
