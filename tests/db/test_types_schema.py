"""Column types, dictionary encoding, schemas, tables."""

import datetime

import numpy as np
import pytest

from repro.db.errors import CatalogError, TypeMismatchError
from repro.db.schema import ColumnDef, Table, TableSchema
from repro.db.types import (
    Column,
    DataType,
    date_to_days,
    days_to_date,
    literal_to_comparable,
)


class TestDates:
    def test_epoch(self):
        assert date_to_days("1970-01-01") == 0

    def test_round_trip(self):
        for iso in ("1992-01-01", "1998-08-02", "2026-06-13"):
            days = date_to_days(iso)
            assert days_to_date(days).isoformat() == iso

    def test_date_object(self):
        assert date_to_days(datetime.date(1970, 1, 2)) == 1


class TestColumn:
    def test_int_column(self):
        col = Column.from_values(DataType.INT64, [3, 1, 2])
        assert col.raw().dtype == np.int64
        assert list(col.values()) == [3, 1, 2]

    def test_string_dictionary_encoding(self):
        col = Column.from_values(DataType.STRING, ["a", "b", "a", "c", "b"])
        assert col.dictionary == ["a", "b", "c"]
        assert list(col.raw()) == [0, 1, 0, 2, 1]
        assert list(col.values()) == ["a", "b", "a", "c", "b"]

    def test_code_for(self):
        col = Column.from_values(DataType.STRING, ["x", "y"])
        assert col.code_for("y") == 1
        assert col.code_for("missing") == -1

    def test_code_for_rejects_non_string(self):
        col = Column.from_values(DataType.INT64, [1])
        with pytest.raises(TypeMismatchError):
            col.code_for("x")

    def test_date_column_accepts_iso_strings(self):
        col = Column.from_values(DataType.DATE, ["1994-01-01", "1994-01-02"])
        assert col.raw()[1] - col.raw()[0] == 1
        assert col.values()[0] == datetime.date(1994, 1, 1)

    def test_take_preserves_dictionary(self):
        col = Column.from_values(DataType.STRING, ["a", "b", "c"])
        taken = col.take(np.array([2, 0]))
        assert list(taken.values()) == ["c", "a"]
        assert taken.dictionary is col.dictionary

    def test_string_requires_dictionary(self):
        with pytest.raises(TypeMismatchError):
            Column(DataType.STRING, np.array([0]))
        with pytest.raises(TypeMismatchError):
            Column(DataType.INT64, np.array([0]), dictionary=["x"])

    def test_literal_to_comparable(self):
        scol = Column.from_values(DataType.STRING, ["a"])
        assert literal_to_comparable(scol, "a") == 0
        dcol = Column.from_values(DataType.DATE, ["1970-01-02"])
        assert literal_to_comparable(dcol, "1970-01-03") == 2
        icol = Column.from_values(DataType.INT64, [1])
        with pytest.raises(TypeMismatchError):
            literal_to_comparable(icol, "not a number")


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [
                ColumnDef("a", DataType.INT64),
                ColumnDef("a", DataType.INT64),
            ])

    def test_invalid_column_name(self):
        with pytest.raises(CatalogError):
            ColumnDef("not a name", DataType.INT64)

    def test_column_lookup(self):
        schema = TableSchema("t", [ColumnDef("a", DataType.INT64)])
        assert schema.column("a").dtype is DataType.INT64
        assert schema.has_column("a")
        assert not schema.has_column("b")
        with pytest.raises(CatalogError):
            schema.column("b")

    def test_row_width(self):
        schema = TableSchema("t", [
            ColumnDef("a", DataType.INT64),
            ColumnDef("b", DataType.STRING),
            ColumnDef("c", DataType.DATE),
        ])
        assert schema.row_width_bytes == 8 + 16 + 4 + 8


class TestTable:
    def _schema(self):
        return TableSchema("t", [
            ColumnDef("k", DataType.INT64),
            ColumnDef("s", DataType.STRING),
        ])

    def test_from_arrays(self):
        table = Table.from_arrays(
            self._schema(), {"k": [1, 2], "s": ["x", "y"]}
        )
        assert table.row_count == 2
        assert table.row(1) == (2, "y")

    def test_missing_column_rejected(self):
        with pytest.raises(CatalogError):
            Table.from_arrays(self._schema(), {"k": [1, 2]})

    def test_ragged_columns_rejected(self):
        with pytest.raises(CatalogError):
            Table.from_arrays(
                self._schema(), {"k": [1, 2], "s": ["x"]}
            )

    def test_dtype_mismatch_rejected(self):
        schema = self._schema()
        cols = {
            "k": Column.from_values(DataType.FLOAT64, [1.0]),
            "s": Column.from_values(DataType.STRING, ["x"]),
        }
        with pytest.raises(TypeMismatchError):
            Table(schema, cols)

    def test_select_rows_mask_and_indices(self):
        table = Table.from_arrays(
            self._schema(), {"k": [1, 2, 3], "s": ["a", "b", "c"]}
        )
        by_mask = table.select_rows(np.array([True, False, True]))
        assert [r[0] for r in map(table.row, range(3))] == [1, 2, 3]
        assert by_mask.row_count == 2
        by_idx = table.select_rows(np.array([2]))
        assert by_idx.row(0) == (3, "c")

    def test_size_bytes(self):
        table = Table.from_arrays(
            self._schema(), {"k": [1, 2], "s": ["a", "b"]}
        )
        assert table.size_bytes == 2 * table.schema.row_width_bytes
