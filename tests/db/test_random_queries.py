"""Property harness: random simple queries vs a Python reference.

Hypothesis generates random single-table filter/aggregate queries over
a random table; the engine's answer is checked against a brute-force
evaluation of the same query.  This is the broad-coverage safety net
behind the hand-written operator tests.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db.engine import Database
from repro.db.profiles import mysql_profile
from repro.db.schema import ColumnDef, TableSchema
from repro.db.types import DataType

N_ROWS = 200


@pytest.fixture(scope="module")
def random_db() -> Database:
    rng = np.random.default_rng(99)
    db = Database(mysql_profile())
    db.create_table(
        TableSchema("r", [
            ColumnDef("a", DataType.INT64),
            ColumnDef("b", DataType.INT64),
            ColumnDef("x", DataType.FLOAT64),
            ColumnDef("tag", DataType.STRING),
        ]),
        {
            "a": rng.integers(0, 20, N_ROWS).tolist(),
            "b": rng.integers(-5, 6, N_ROWS).tolist(),
            "x": rng.uniform(-10, 10, N_ROWS).round(4).tolist(),
            "tag": [f"t{v}" for v in rng.integers(0, 4, N_ROWS)],
        },
    )
    return db


def reference_rows(db: Database) -> list[tuple[int, int, float, str]]:
    table = db.catalog.table("r")
    return [table.row(i) for i in range(table.row_count)]


# Predicate AST as (sql fragment, python callable on a row dict) pairs.

def _leaf_predicates():
    def cmp_pred(col, op, value):
        ops = {
            "=": lambda a, b: a == b,
            "<>": lambda a, b: a != b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
        }
        return (
            f"{col} {op} {value}",
            lambda row, c=col, o=op, v=value: ops[o](row[c], v),
        )

    int_cols = st.sampled_from(["a", "b"])
    ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
    int_leaf = st.builds(
        cmp_pred, int_cols, ops, st.integers(-6, 21)
    )
    float_leaf = st.builds(
        cmp_pred, st.just("x"), ops,
        st.integers(-10, 10),
    )
    tag_leaf = st.sampled_from([0, 1, 2, 3, 9]).map(
        lambda v: (
            f"tag = 't{v}'",
            lambda row, vv=f"t{v}": row["tag"] == vv,
        )
    )
    in_leaf = st.lists(
        st.integers(0, 20), min_size=1, max_size=4, unique=True
    ).map(
        lambda vals: (
            f"a IN ({', '.join(map(str, vals))})",
            lambda row, vv=tuple(vals): row["a"] in vv,
        )
    )
    between_leaf = st.tuples(
        st.integers(0, 10), st.integers(0, 10)
    ).map(
        lambda pair: (
            f"a BETWEEN {min(pair)} AND {max(pair)}",
            lambda row, lo=min(pair), hi=max(pair): lo <= row["a"] <= hi,
        )
    )
    return st.one_of(int_leaf, float_leaf, tag_leaf, in_leaf,
                     between_leaf)


def _predicates(depth: int = 2):
    leaf = _leaf_predicates()
    if depth == 0:
        return leaf
    sub = _predicates(depth - 1)

    def combine(kind, left, right):
        if kind == "and":
            return (
                f"({left[0]} AND {right[0]})",
                lambda row, l=left[1], r=right[1]: l(row) and r(row),
            )
        if kind == "or":
            return (
                f"({left[0]} OR {right[0]})",
                lambda row, l=left[1], r=right[1]: l(row) or r(row),
            )
        return (
            f"(NOT {left[0]})",
            lambda row, l=left[1]: not l(row),
        )

    return st.one_of(
        leaf,
        st.builds(combine, st.sampled_from(["and", "or"]), sub, sub),
        st.builds(combine, st.just("not"), sub, sub),
    )


def _row_dict(row: tuple) -> dict:
    return {"a": row[0], "b": row[1], "x": row[2], "tag": row[3]}


class TestRandomFilters:
    @given(pred=_predicates())
    @settings(max_examples=80, deadline=None)
    def test_filter_matches_reference(self, random_db, pred):
        sql_pred, py_pred = pred
        result = random_db.execute(
            f"SELECT a, b, x, tag FROM r WHERE {sql_pred} ORDER BY a, b"
        )
        expected = sorted(
            (row for row in reference_rows(random_db)
             if py_pred(_row_dict(row))),
            key=lambda r: (r[0], r[1]),
        )
        got = result.rows()
        assert len(got) == len(expected)
        assert sorted(got) == sorted(expected)

    @given(pred=_predicates())
    @settings(max_examples=40, deadline=None)
    def test_aggregate_matches_reference(self, random_db, pred):
        sql_pred, py_pred = pred
        result = random_db.execute(
            f"SELECT COUNT(*) AS n, SUM(x) AS s FROM r WHERE {sql_pred}"
        )
        rows = [
            _row_dict(r) for r in reference_rows(random_db)
            if py_pred(_row_dict(r))
        ]
        n, s = result.rows()[0]
        assert n == len(rows)
        assert s == pytest.approx(sum(r["x"] for r in rows), abs=1e-6)

    @given(pred=_predicates(depth=1),
           group=st.sampled_from(["a", "b", "tag"]))
    @settings(max_examples=40, deadline=None)
    def test_group_by_matches_reference(self, random_db, pred, group):
        sql_pred, py_pred = pred
        result = random_db.execute(
            f"SELECT {group}, COUNT(*) AS n FROM r WHERE {sql_pred} "
            f"GROUP BY {group}"
        )
        expected: dict = {}
        for row in reference_rows(random_db):
            d = _row_dict(row)
            if py_pred(d):
                expected[d[group]] = expected.get(d[group], 0) + 1
        got = {k: n for k, n in result.rows()}
        assert got == expected

    @given(pred=_predicates(depth=1))
    @settings(max_examples=30, deadline=None)
    def test_comparison_counts_bounded(self, random_db, pred):
        """Work accounting sanity: short-circuit counts never exceed a
        full evaluation of every leaf on every row."""
        sql_pred, _ = pred
        result = random_db.execute(f"SELECT a FROM r WHERE {sql_pred}")
        leaves = (
            sql_pred.count("=") + sql_pred.count("<") +
            sql_pred.count(">") + sql_pred.count("BETWEEN") * 2 +
            # an IN list does one comparison per element: 1 for the
            # head plus 1 per comma
            sql_pred.count("IN (") + sql_pred.count(",")
        )
        assert result.stats.total_comparisons <= max(1, leaves) * N_ROWS * 2
