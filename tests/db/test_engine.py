"""Database facade: end-to-end behaviour, traces, buffer management."""

import pytest

from repro.db.cost_model import server_cycles
from repro.db.engine import Database
from repro.db.errors import CatalogError
from repro.db.profiles import (
    commercial_profile,
    mysql_profile,
    profile_by_name,
)
from repro.db.schema import ColumnDef, TableSchema
from repro.db.types import DataType
from repro.hardware.trace import CpuWork, DiskAccess, Idle


@pytest.fixture()
def db() -> Database:
    db = Database(mysql_profile())
    db.create_table(
        TableSchema("t", [
            ColumnDef("a", DataType.INT64),
            ColumnDef("b", DataType.FLOAT64),
        ]),
        {"a": [1, 2, 3, 4], "b": [0.5, 1.5, 2.5, 3.5]},
    )
    return db


class TestDatabase:
    def test_execute_returns_counters(self, db):
        result = db.execute("SELECT a FROM t WHERE a > 1")
        assert result.row_count == 3
        assert result.stats.total_comparisons == 4
        assert result.stats.output_rows == 3

    def test_drop_table(self, db):
        db.drop_table("t")
        with pytest.raises(CatalogError):
            db.catalog.table("t")

    def test_duplicate_create_rejected(self, db):
        with pytest.raises(CatalogError):
            db.create_table(
                TableSchema("t", [ColumnDef("a", DataType.INT64)]),
                {"a": [1]},
            )

    def test_result_size_bytes(self, db):
        result = db.execute("SELECT a, b FROM t")
        assert result.size_bytes == 4 * (8 + 8)

    def test_scalar_helper(self, db):
        assert db.execute("SELECT COUNT(*) AS n FROM t").scalar() == 4
        with pytest.raises(ValueError):
            db.execute("SELECT a FROM t").scalar()


class TestTraces:
    def test_memory_engine_trace_is_pure_cpu(self, db):
        result = db.execute("SELECT a FROM t")
        trace = db.trace_for(result)
        kinds = {type(seg) for seg in trace}
        assert kinds == {CpuWork}

    def test_cycles_scale_with_counters(self, db):
        small = db.execute("SELECT a FROM t WHERE a > 3")
        large = db.execute("SELECT a FROM t")
        assert db.server_cycles_for(large) > db.server_cycles_for(small)

    def test_cost_model_components(self, db):
        result = db.execute("SELECT a FROM t WHERE a > 1")
        profile = db.profile
        cycles = server_cycles(profile, result.stats)
        expected = (
            profile.query_overhead_cycles
            + 4 * profile.cycles_per_row_scan
            + 4 * profile.cycles_per_comparison
            + 3 * profile.cycles_per_output_row
        )
        assert cycles == pytest.approx(expected)

    def test_commercial_trace_has_disk_and_stall(self):
        db = Database(commercial_profile(0.01))
        db.create_table(
            TableSchema("u", [ColumnDef("a", DataType.INT64)]),
            {"a": list(range(10_000))},
        )
        db.warm()
        result = db.execute("SELECT a FROM u WHERE a > 5000")
        trace = db.trace_for(result)
        kinds = {type(seg) for seg in trace}
        assert DiskAccess in kinds   # temp/log writes
        assert Idle in kinds         # stall time


class TestBufferManagement:
    def test_cool_then_warm(self):
        db = Database(commercial_profile(0.01))
        db.create_table(
            TableSchema("u", [ColumnDef("a", DataType.INT64)]),
            {"a": list(range(50_000))},
        )
        cold = db.execute("SELECT a FROM u WHERE a = 1")
        cold_io = sum(
            s.bytes_total for s in cold.stats.io_log
            if s.label.startswith("scan")
        )
        warm = db.execute("SELECT a FROM u WHERE a = 1")
        warm_io = sum(
            s.bytes_total for s in warm.stats.io_log
            if s.label.startswith("scan")
        )
        assert cold_io > 0
        assert warm_io == 0
        db.cool()
        again = db.execute("SELECT a FROM u WHERE a = 1")
        again_io = sum(
            s.bytes_total for s in again.stats.io_log
            if s.label.startswith("scan")
        )
        assert again_io == pytest.approx(cold_io)

    def test_memory_engine_warm_noop(self, db):
        db.warm()  # must not raise


class TestProfiles:
    def test_profile_by_name(self):
        assert profile_by_name("mysql").storage == "memory"
        assert profile_by_name("commercial").storage == "disk"
        with pytest.raises(ValueError):
            profile_by_name("oracle")

    def test_scaled_memory(self):
        base = commercial_profile(1.0)
        half = commercial_profile(0.5)
        assert half.work_mem_bytes == base.work_mem_bytes // 2
        assert half.buffer_pool_bytes == base.buffer_pool_bytes // 2

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            commercial_profile(0.0)

    def test_workload_classes(self):
        assert mysql_profile().workload_class == "cpu_bound"
        assert commercial_profile().workload_class == "io_mixed"
