"""EXPLAIN with costs, result accessors, and trace building details."""

import pytest

from repro.db.cost_model import build_trace
from repro.db.engine import Database
from repro.db.profiles import commercial_profile, mysql_profile
from repro.db.results import QueryResult
from repro.db.schema import ColumnDef, TableSchema
from repro.db.types import Column, DataType
from repro.hardware.trace import CpuWork, DiskAccess, Idle


@pytest.fixture()
def db() -> Database:
    db = Database(mysql_profile())
    db.create_table(
        TableSchema("t", [
            ColumnDef("a", DataType.INT64),
            ColumnDef("g", DataType.STRING),
        ]),
        {"a": list(range(100)), "g": [f"g{i % 3}" for i in range(100)]},
    )
    return db


class TestExplainWithCosts:
    def test_annotations_present(self, db):
        text = db.explain(
            "SELECT g, COUNT(*) AS n FROM t GROUP BY g", with_costs=True
        )
        assert "t~" in text and "e~" in text and "rows~" in text

    def test_plain_explain_has_no_costs(self, db):
        text = db.explain("SELECT a FROM t")
        assert "t~" not in text

    def test_root_includes_statement_overhead(self, db):
        text = db.explain("SELECT a FROM t", with_costs=True)
        lines = text.splitlines()

        def time_of(line):
            return float(line.split("t~")[1].split("s")[0])

        # Root (project) carries the statement overhead, so it costs
        # at least as much as its scan child.
        assert time_of(lines[0]) >= time_of(lines[-1])


class TestQueryResult:
    def test_column_lookup(self):
        result = QueryResult(
            names=["a"],
            columns=[Column.from_values(DataType.INT64, [1, 2])],
        )
        assert list(result.column("a").raw()) == [1, 2]
        with pytest.raises(KeyError):
            result.column("b")

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            QueryResult(names=["a", "b"], columns=[])

    def test_empty_result_rows(self):
        result = QueryResult(names=[], columns=[])
        assert result.rows() == []
        assert result.row_count == 0


class TestTraceBuilding:
    def test_mysql_trace_has_no_stall_or_temp(self, db):
        result = db.execute("SELECT a FROM t WHERE a > 50")
        trace = build_trace(db.profile, result.stats)
        labels = [getattr(s, "label", "") for s in trace]
        assert not any("stall" in lbl for lbl in labels)
        assert not any("temp" in lbl for lbl in labels)

    def test_commercial_trace_segment_order(self):
        db = Database(commercial_profile(0.01))
        db.create_table(
            TableSchema("u", [ColumnDef("a", DataType.INT64)]),
            {"a": list(range(20_000))},
        )
        db.warm()
        result = db.execute("SELECT a FROM u WHERE a > 5")
        trace = build_trace(db.profile, result.stats, label="x")
        kinds = [type(s) for s in trace.segments]
        # CPU first, then temp I/O (+ any scan I/O), stall last.
        assert kinds[0] is CpuWork
        assert kinds[-1] is Idle
        assert DiskAccess in kinds
        labels = [getattr(s, "label", "") for s in trace]
        assert any(lbl == "x:temp" for lbl in labels)
        assert any(lbl == "x:stall" for lbl in labels)

    def test_temp_bytes_scale_with_rows(self):
        db = Database(commercial_profile(0.01))
        db.create_table(
            TableSchema("u", [ColumnDef("a", DataType.INT64)]),
            {"a": list(range(20_000))},
        )
        db.warm()
        small = db.execute("SELECT a FROM u WHERE a = 1")
        trace_small = build_trace(db.profile, small.stats)
        large = db.execute("SELECT a FROM u WHERE a > 1")
        trace_large = build_trace(db.profile, large.stats)
        # Temp volume is proportional to rows flowing through the
        # executor (scan + downstream operators).
        assert trace_small.total_disk_bytes == pytest.approx(
            db.profile.temp_write_bytes_per_row
            * small.stats.total_rows_in
        )
        assert trace_large.total_disk_bytes > trace_small.total_disk_bytes
