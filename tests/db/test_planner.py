"""Binder, optimizer, and plan shapes."""

import pytest

from repro.db.catalog import Catalog
from repro.db.engine import Database
from repro.db.errors import PlanError
from repro.db.plan.cost import estimate_selectivity
from repro.db.plan.logical import bind
from repro.db.plan.physical import (
    PhysAggregate,
    PhysHashJoin,
    PhysLimit,
    PhysProject,
    PhysScan,
    PhysSort,
    format_plan,
)
from repro.db.profiles import mysql_profile
from repro.db.schema import ColumnDef, TableSchema
from repro.db.sql.parser import parse
from repro.db.types import DataType


@pytest.fixture()
def db() -> Database:
    db = Database(mysql_profile())
    db.create_table(
        TableSchema("big", [
            ColumnDef("k", DataType.INT64),
            ColumnDef("g", DataType.INT64),
            ColumnDef("v", DataType.FLOAT64),
        ]),
        {
            "k": list(range(1000)),
            "g": [i % 10 for i in range(1000)],
            "v": [float(i) for i in range(1000)],
        },
    )
    db.create_table(
        TableSchema("small", [
            ColumnDef("g", DataType.INT64),
            ColumnDef("name", DataType.STRING),
        ]),
        {"g": list(range(10)), "name": [f"g{i}" for i in range(10)]},
    )
    return db


class TestBinder:
    def test_qualifies_columns(self, db):
        bound = bind(parse("SELECT k FROM big WHERE v > 1"), db.catalog)
        assert bound.items[0].expr.table == "big"

    def test_classifies_predicates(self, db):
        bound = bind(parse(
            "SELECT k FROM big, small "
            "WHERE big.g = small.g AND v > 1 AND name = 'g1'"
        ), db.catalog)
        assert len(bound.join_predicates) == 1
        assert len(bound.table_predicates["big"]) == 1
        assert len(bound.table_predicates["small"]) == 1

    def test_unknown_table(self, db):
        with pytest.raises(PlanError):
            bind(parse("SELECT x FROM nope"), db.catalog)

    def test_unknown_column(self, db):
        with pytest.raises(PlanError):
            bind(parse("SELECT nope FROM big"), db.catalog)

    def test_ambiguous_column(self, db):
        with pytest.raises(PlanError):
            bind(parse("SELECT g FROM big, small"), db.catalog)

    def test_star_expansion(self, db):
        bound = bind(parse("SELECT * FROM small"), db.catalog)
        assert [i.expr.name for i in bound.items] == ["g", "name"]

    def test_duplicate_binding(self, db):
        with pytest.raises(PlanError):
            bind(parse("SELECT 1 FROM big, big"), db.catalog)


class TestPlans:
    def test_pushdown_into_scan(self, db):
        plan = db.plan("SELECT k FROM big WHERE v > 500")
        scan = plan
        while not isinstance(scan, PhysScan):
            scan = scan.children()[0]
        assert scan.predicate is not None

    def test_join_builds_on_smaller_side(self, db):
        plan = db.plan(
            "SELECT k FROM big, small WHERE big.g = small.g"
        )
        join = plan.children()[0]
        assert isinstance(join, PhysHashJoin)
        assert join.build.est_rows <= join.probe.est_rows

    def test_cross_join_rejected(self, db):
        with pytest.raises(PlanError):
            db.plan("SELECT k FROM big, small")

    def test_aggregate_plan_shape(self, db):
        plan = db.plan(
            "SELECT g, SUM(v) AS total FROM big GROUP BY g"
        )
        assert isinstance(plan, PhysProject)
        assert isinstance(plan.children()[0], PhysAggregate)

    def test_non_grouped_column_rejected(self, db):
        with pytest.raises(PlanError):
            db.plan("SELECT k, SUM(v) FROM big GROUP BY g")

    def test_sort_after_project_for_output_keys(self, db):
        plan = db.plan("SELECT g, SUM(v) AS t FROM big GROUP BY g "
                       "ORDER BY t DESC")
        assert isinstance(plan, PhysSort)
        assert isinstance(plan.children()[0], PhysProject)

    def test_sort_before_project_for_hidden_keys(self, db):
        plan = db.plan("SELECT k FROM big ORDER BY v")
        # sort must run below the projection since v is not output
        assert isinstance(plan, PhysProject)
        assert isinstance(plan.children()[0], PhysSort)

    def test_limit_on_top(self, db):
        plan = db.plan("SELECT k FROM big LIMIT 5")
        assert isinstance(plan, PhysLimit)

    def test_column_pruning(self, db):
        plan = db.plan("SELECT k FROM big WHERE v > 1")
        scan = plan
        while not isinstance(scan, PhysScan):
            scan = scan.children()[0]
        assert scan.columns == frozenset({"k", "v"})

    def test_format_plan_mentions_operators(self, db):
        text = format_plan(db.plan(
            "SELECT g, COUNT(*) AS n FROM big GROUP BY g ORDER BY n"
        ))
        assert "Aggregate" in text
        assert "SeqScan" in text
        assert "rows~" in text

    def test_explain_smoke(self, db):
        assert "SeqScan(big)" in db.explain("SELECT k FROM big")


class TestSelectivity:
    def _stats(self, db) -> Catalog:
        return db.catalog.stats("big")

    def test_equality(self, db):
        stats = self._stats(db)
        sel = estimate_selectivity(
            parse("SELECT k FROM big WHERE g = 3").where, stats
        )
        assert sel == pytest.approx(0.1)

    def test_range(self, db):
        stats = self._stats(db)
        sel = estimate_selectivity(
            parse("SELECT k FROM big WHERE v >= 500").where, stats
        )
        assert 0.4 < sel < 0.6

    def test_conjunction_multiplies(self, db):
        stats = self._stats(db)
        sel = estimate_selectivity(
            parse("SELECT k FROM big WHERE g = 3 AND v >= 500").where,
            stats,
        )
        assert sel == pytest.approx(0.1 * 0.5005, rel=0.05)

    def test_or_adds(self, db):
        stats = self._stats(db)
        sel = estimate_selectivity(
            parse("SELECT k FROM big WHERE g = 3 OR g = 4").where, stats
        )
        assert sel == pytest.approx(0.19, abs=0.02)

    def test_in_list(self, db):
        stats = self._stats(db)
        sel = estimate_selectivity(
            parse("SELECT k FROM big WHERE g IN (1,2,3)").where, stats
        )
        assert sel == pytest.approx(0.3, abs=0.01)
