"""Buffer pool and storage engines."""

import pytest
from hypothesis import given, strategies as st

from repro.db.errors import ExecutionError
from repro.db.exec.stats import ExecutionStats
from repro.db.schema import ColumnDef, Table, TableSchema
from repro.db.storage.buffer import BufferPool
from repro.db.storage.engines import DiskEngine, MemoryEngine
from repro.db.storage.pages import PAGE_SIZE_BYTES, pages_for
from repro.db.types import DataType


class TestPages:
    def test_pages_for(self):
        assert pages_for(0, 100) == 0
        assert pages_for(1, 100) == 1
        rows_per_page = PAGE_SIZE_BYTES // 100
        assert pages_for(rows_per_page, 100) == 1
        assert pages_for(rows_per_page + 1, 100) == 2

    def test_wide_rows(self):
        assert pages_for(10, PAGE_SIZE_BYTES * 2) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            pages_for(-1, 10)
        with pytest.raises(ValueError):
            pages_for(1, 0)


class TestBufferPool:
    def test_hit_after_miss(self):
        pool = BufferPool(10 * PAGE_SIZE_BYTES)
        assert pool.access(("t", 0)) is False
        assert pool.access(("t", 0)) is True
        assert pool.hits == 1 and pool.misses == 1

    def test_capacity_enforced(self):
        pool = BufferPool(3 * PAGE_SIZE_BYTES)
        for i in range(5):
            pool.access(("t", i))
        assert len(pool) == 3
        assert pool.evictions == 2

    def test_lru_eviction_order(self):
        pool = BufferPool(2 * PAGE_SIZE_BYTES)
        pool.access(("t", 0))
        pool.access(("t", 1))
        pool.access(("t", 0))  # 0 is now most recent
        pool.access(("t", 2))  # evicts 1
        assert pool.contains(("t", 0))
        assert not pool.contains(("t", 1))

    def test_evict_table(self):
        pool = BufferPool(10 * PAGE_SIZE_BYTES)
        pool.access(("a", 0))
        pool.access(("b", 0))
        assert pool.evict_table("a") == 1
        assert pool.contains(("b", 0))

    def test_clear(self):
        pool = BufferPool(10 * PAGE_SIZE_BYTES)
        pool.access(("t", 0))
        pool.clear()
        assert len(pool) == 0

    @given(st.lists(st.integers(0, 20), max_size=100))
    def test_never_exceeds_capacity(self, accesses):
        pool = BufferPool(5 * PAGE_SIZE_BYTES)
        for page in accesses:
            pool.access(("t", page))
        assert len(pool) <= 5
        assert pool.hits + pool.misses == len(accesses)

    def test_zero_capacity(self):
        pool = BufferPool(0)
        assert pool.access(("t", 0)) is False
        assert pool.access(("t", 0)) is False


def _table(rows: int = 5000) -> Table:
    schema = TableSchema("t", [
        ColumnDef("k", DataType.INT64),
        ColumnDef("v", DataType.FLOAT64),
    ])
    return Table.from_arrays(schema, {
        "k": list(range(rows)), "v": [float(i) for i in range(rows)],
    })


class TestMemoryEngine:
    def test_scan_no_io(self):
        engine = MemoryEngine()
        stats = ExecutionStats()
        cols = engine.scan(_table(), stats)
        assert "k" in cols
        assert stats.io_log == []

    def test_spill_rejected(self):
        with pytest.raises(ExecutionError):
            MemoryEngine().spill(100, ExecutionStats())

    def test_not_persistent(self):
        assert MemoryEngine().is_persistent is False


class TestDiskEngine:
    def test_cold_scan_reads_all_pages(self):
        table = _table()
        engine = DiskEngine(BufferPool(100 * 1024 * 1024))
        stats = ExecutionStats()
        engine.scan(table, stats)
        total = sum(a.bytes_total for a in stats.io_log)
        assert total == pytest.approx(
            engine.table_pages(table) * PAGE_SIZE_BYTES
        )

    def test_warm_scan_no_io(self):
        table = _table()
        engine = DiskEngine(BufferPool(100 * 1024 * 1024))
        engine.warm(table)
        stats = ExecutionStats()
        engine.scan(table, stats)
        assert stats.io_log == []

    def test_undersized_pool_rereads(self):
        table = _table()
        pages = engine_pages = None
        engine = DiskEngine(BufferPool(2 * PAGE_SIZE_BYTES))
        stats = ExecutionStats()
        engine.scan(table, stats)
        stats2 = ExecutionStats()
        engine.scan(table, stats2)
        assert sum(a.bytes_total for a in stats2.io_log) > 0

    def test_cold_scan_uses_chunked_reads(self):
        """Cold scans are chunked synchronous reads (paper's 3x cold)."""
        table = _table(rows=200_000)  # ~ a few MB of pages
        engine = DiskEngine(BufferPool(100 * 1024 * 1024))
        stats = ExecutionStats()
        engine.scan(table, stats)
        access = stats.io_log[0]
        assert access.sequential is False
        assert access.num_ops > 1
        assert access.cpu_overlap_utilization == pytest.approx(
            DiskEngine.COLD_SCAN_CPU_OVERLAP
        )

    def test_spill_writes_then_reads(self):
        engine = DiskEngine(BufferPool(10 * PAGE_SIZE_BYTES))
        stats = ExecutionStats()
        engine.spill(1e6, stats, label="hash")
        labels = [a.label for a in stats.io_log]
        assert labels == ["hash:write", "hash:read"]
        assert stats.io_log[0].write is True
        assert stats.io_log[1].write is False

    def test_zero_spill_noop(self):
        engine = DiskEngine(BufferPool(10 * PAGE_SIZE_BYTES))
        stats = ExecutionStats()
        engine.spill(0, stats)
        assert stats.io_log == []
