"""DVFS governors: utilization-driven p-state selection and capping."""

import pytest

from repro.hardware.cpu import Cpu, PvcSetting, e8500_like_spec
from repro.hardware.dvfs import (
    CappedGovernor,
    UtilizationGovernor,
    frequency_steps_hz,
)


@pytest.fixture()
def cpu():
    return Cpu(e8500_like_spec())


class TestUtilizationGovernor:
    def test_full_load_selects_top(self, cpu):
        governor = UtilizationGovernor()
        assert governor.select_pstate(cpu, 1.0).multiplier == 9

    def test_idle_selects_lowest(self, cpu):
        governor = UtilizationGovernor()
        assert governor.select_pstate(cpu, 0.05).multiplier == 6

    def test_monotone_in_utilization(self, cpu):
        governor = UtilizationGovernor()
        mults = [
            governor.select_pstate(cpu, u).multiplier
            for u in (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)
        ]
        assert mults == sorted(mults)

    def test_headroom_biases_upward(self, cpu):
        eager = UtilizationGovernor(headroom=0.5)
        lazy = UtilizationGovernor(headroom=1.0)
        u = 0.55
        assert (
            eager.select_pstate(cpu, u).multiplier
            >= lazy.select_pstate(cpu, u).multiplier
        )

    def test_invalid_inputs(self, cpu):
        with pytest.raises(ValueError):
            UtilizationGovernor(headroom=0.0)
        with pytest.raises(ValueError):
            UtilizationGovernor().select_pstate(cpu, 1.5)

    def test_selection_unaffected_by_underclock(self):
        """Underclocking scales all states together, so the *relative*
        choice for a duty cycle stays the same multiplier."""
        governor = UtilizationGovernor()
        stock = Cpu(e8500_like_spec())
        slowed = Cpu(e8500_like_spec(), PvcSetting(15))
        for u in (0.2, 0.5, 0.8, 1.0):
            assert (
                governor.select_pstate(stock, u).multiplier
                == governor.select_pstate(slowed, u).multiplier
            )


class TestCappedGovernor:
    def test_cap_removes_top_states(self, cpu):
        governor = CappedGovernor(max_multiplier=7)
        available = governor.available_pstates(cpu)
        assert [p.multiplier for p in available] == [6, 7]

    def test_paper_example_two_states_left(self, cpu):
        """Capping at 7 leaves 2 transition states (paper Sec. 3)."""
        governor = CappedGovernor(max_multiplier=7)
        assert len(governor.available_pstates(cpu)) == 2

    def test_full_load_selects_cap(self, cpu):
        governor = CappedGovernor(max_multiplier=7)
        assert governor.select_pstate(cpu, 1.0).multiplier == 7

    def test_cap_below_lowest_clamps(self, cpu):
        governor = CappedGovernor(max_multiplier=1)
        assert governor.select_pstate(cpu, 1.0).multiplier == 6

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            CappedGovernor(max_multiplier=0)


class TestFrequencyGranularity:
    def test_underclock_keeps_all_steps(self):
        """The paper's core PVC argument: underclocking retains every
        p-state (at scaled frequencies) while capping deletes states."""
        spec = e8500_like_spec()
        governor = UtilizationGovernor()
        stock_steps = frequency_steps_hz(Cpu(spec), governor)
        under_steps = frequency_steps_hz(Cpu(spec, PvcSetting(10)), governor)
        capped_steps = frequency_steps_hz(
            Cpu(spec), CappedGovernor(max_multiplier=7)
        )
        assert len(under_steps) == len(stock_steps) == 4
        assert len(capped_steps) == 2
        for slow, fast in zip(under_steps, stock_steps):
            assert slow == pytest.approx(0.9 * fast)

    def test_underclock_is_finer_grained(self):
        """A 5% FSB cut moves the top frequency by 150 MHz; one
        multiplier cap moves it by a full 333 MHz."""
        spec = e8500_like_spec()
        stock_top = max(frequency_steps_hz(
            Cpu(spec), UtilizationGovernor()
        ))
        under_top = max(frequency_steps_hz(
            Cpu(spec, PvcSetting(5)), UtilizationGovernor()
        ))
        capped_top = max(frequency_steps_hz(
            Cpu(spec), CappedGovernor(max_multiplier=8)
        ))
        assert stock_top - under_top < stock_top - capped_top
