"""Disk model: timing, rails, and the Figure 5 microbenchmark."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.disk import Disk, DiskEnergy, DiskSpec
from repro.hardware.trace import DiskAccess


@pytest.fixture()
def disk():
    return Disk()


class TestSequential:
    def test_rate(self, disk):
        assert disk.sequential_time_s(72e6) == pytest.approx(1.0)

    def test_zero_bytes(self, disk):
        assert disk.sequential_time_s(0) == 0.0

    def test_negative_rejected(self, disk):
        with pytest.raises(ValueError):
            disk.sequential_time_s(-1)

    def test_throughput_flat_in_block_size(self, disk):
        """Fig. 5(a): sequential throughput constant regardless of block."""
        rates = [
            disk.throughput_bps(b, sequential=True)
            for b in (4096, 8192, 16384, 32768)
        ]
        assert max(rates) - min(rates) < 1e-6 * rates[0]


class TestRandom:
    def test_per_op_overhead_dominates_small_blocks(self, disk):
        t1 = disk.random_time_s(1, 4096)
        t2 = disk.random_time_s(2, 8192)
        assert t2 == pytest.approx(2 * t1, rel=1e-9)

    def test_monotone_in_ops(self, disk):
        assert disk.random_time_s(10, 40960) < disk.random_time_s(20, 81920)

    def test_random_much_slower_than_sequential(self, disk):
        seq = disk.throughput_bps(4096, sequential=True)
        rand = disk.throughput_bps(4096, sequential=False)
        assert rand < seq / 50

    def test_improvement_factors_match_paper(self, disk):
        """Fig. 5: 8/16/32 KB improve ~1.88x / ~3.5x / ~6x over 4 KB."""
        base = disk.throughput_bps(4096, sequential=False)
        for block, expected in ((8192, 1.88), (16384, 3.5), (32768, 6.0)):
            factor = disk.throughput_bps(block, sequential=False) / base
            assert factor == pytest.approx(expected, rel=0.12)

    def test_subproportional_scaling(self, disk):
        """Doubling the block size less than doubles throughput."""
        for block in (4096, 8192, 16384):
            small = disk.throughput_bps(block, sequential=False)
            large = disk.throughput_bps(2 * block, sequential=False)
            assert small < large < 2 * small

    @given(ops=st.integers(min_value=1, max_value=10_000))
    def test_time_positive(self, ops):
        disk = Disk()
        assert disk.random_time_s(ops, ops * 4096) > 0


class TestEnergy:
    def test_rails_sum(self):
        energy = DiskEnergy(2.0, 3.0)
        assert energy.total_joules == 5.0
        combined = energy + DiskEnergy(1.0, 1.0)
        assert combined.joules_5v == 3.0
        assert combined.joules_12v == 4.0

    def test_active_exceeds_idle(self, disk):
        active = disk.active_energy(10.0).total_joules
        idle = disk.idle_energy(10.0).total_joules
        assert active > idle

    def test_energy_per_kb_tracks_inverse_throughput(self, disk):
        """Fig. 5(b): energy per KB ~ power / throughput."""
        for block in (4096, 32768):
            rate = disk.throughput_bps(block, sequential=False)
            e_kb = disk.energy_per_kb(block, sequential=False)
            assert e_kb == pytest.approx(
                disk.spec.active_power_w / rate * 1024
            )

    def test_sequential_energy_per_kb_flat(self, disk):
        values = [
            disk.energy_per_kb(b, sequential=True)
            for b in (4096, 8192, 16384, 32768)
        ]
        assert max(values) == pytest.approx(min(values))

    def test_sequential_more_efficient_than_random(self, disk):
        """Paper: sequential is more energy efficient per KB --
        primarily because it is faster."""
        assert (
            disk.energy_per_kb(4096, sequential=True)
            < disk.energy_per_kb(4096, sequential=False) / 10
        )


class TestAccessSegments:
    def test_write_penalty(self, disk):
        read = DiskAccess(1, 1e6, sequential=True, write=False)
        write = DiskAccess(1, 1e6, sequential=True, write=True)
        assert disk.access_time_s(write) == pytest.approx(
            disk.access_time_s(read) * disk.spec.write_penalty
        )

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DiskSpec(seq_rate_bps=0)
        with pytest.raises(ValueError):
            DiskSpec(idle_5v_w=-1)

    def test_warm_run_power_magnitude(self, disk):
        """Idle draw ~4 W: the Sec. 3.5 warm run averages 4.43 W."""
        assert 3.5 < disk.spec.idle_power_w < 4.5
        assert 8.0 < disk.spec.active_power_w < 9.5
