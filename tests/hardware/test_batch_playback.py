"""Stacked batch playback and compiled-trace persistence."""

import numpy as np
import pytest

from repro.hardware.cpu import PvcSetting, VoltageDowngrade
from repro.hardware.trace import (
    CompiledTrace,
    CpuWork,
    ClientWork,
    DiskAccess,
    Idle,
    Trace,
)

REL = 1e-9


def _traces():
    t1 = Trace([
        CpuWork(2.0e9, 1.0, "a"),
        DiskAccess(40, 12e6, sequential=True, label="a:io"),
        ClientWork(1.5e8, 0.35, "a:client"),
    ])
    t2 = Trace([
        CpuWork(5.0e8, 0.62, "b"),
        Idle(0.25, "b:idle"),
    ])
    t3 = Trace([])  # a node that never served anything
    t4 = Trace([
        DiskAccess(500, 4e6, sequential=False, label="c:io"),
        CpuWork(1.0e9, 0.9, "c"),
        Idle(1.5, "c:idle"),
    ])
    return [t.compiled() for t in (t1, t2, t3, t4)]


class TestRunCompiledBatch:
    @pytest.mark.parametrize("setting", [
        PvcSetting(),
        PvcSetting(10, VoltageDowngrade.MEDIUM),
    ])
    def test_matches_per_trace_run_compiled(self, sut, setting):
        sut.apply_setting(setting)
        traces = _traces()
        batch = sut.run_compiled_batch(traces)
        assert len(batch) == len(traces)
        for compiled, measurement in zip(traces, batch):
            single = sut.run_compiled(compiled)
            assert measurement.duration_s == pytest.approx(
                single.duration_s, rel=REL, abs=1e-15
            )
            assert measurement.wall_joules == pytest.approx(
                single.wall_joules, rel=REL, abs=1e-15
            )
            assert measurement.cpu_joules == pytest.approx(
                single.cpu_joules, rel=REL, abs=1e-15
            )
            assert measurement.disk_joules == pytest.approx(
                single.disk_joules, rel=REL, abs=1e-15
            )

    def test_empty_batch_and_empty_traces(self, sut):
        assert sut.run_compiled_batch([]) == []
        only_empty = sut.run_compiled_batch(
            [Trace([]).compiled(), Trace([]).compiled()]
        )
        assert [m.duration_s for m in only_empty] == [0.0, 0.0]
        assert [m.wall_joules for m in only_empty] == [0.0, 0.0]

    def test_concat_plays_like_the_sum(self, sut):
        traces = _traces()
        stacked = CompiledTrace.concat(traces)
        assert len(stacked) == sum(len(t) for t in traces)
        whole = sut.run_compiled(stacked)
        parts = sut.run_compiled_batch(traces)
        assert whole.duration_s == pytest.approx(
            sum(m.duration_s for m in parts), rel=REL
        )
        assert whole.wall_joules == pytest.approx(
            sum(m.wall_joules for m in parts), rel=REL
        )


class TestCompiledTracePersistence:
    def test_save_load_roundtrip(self, tmp_path):
        for compiled in _traces():
            path = tmp_path / "trace.npz"
            compiled.save(path)
            loaded = CompiledTrace.load(path)
            assert loaded.labels == compiled.labels
            for name in ("kinds", "cycles", "utilization", "num_ops",
                         "bytes_total", "sequential", "write", "seconds"):
                np.testing.assert_array_equal(
                    getattr(loaded, name), getattr(compiled, name)
                )

    def test_loaded_trace_plays_identically(self, sut, tmp_path):
        compiled = _traces()[0]
        path = tmp_path / "trace.npz"
        compiled.save(path)
        loaded = CompiledTrace.load(path)
        a = sut.run_compiled(compiled)
        b = sut.run_compiled(loaded)
        assert b.duration_s == a.duration_s
        assert b.wall_joules == a.wall_joules
