"""System-under-test playback: time/energy integration semantics."""

import pytest

from repro.calibration import targets
from repro.hardware.cpu import PvcSetting, VoltageDowngrade
from repro.hardware.profiles import paper_sut
from repro.hardware.system import CPU_BOUND, IO_MIXED
from repro.hardware.trace import ClientWork, CpuWork, DiskAccess, Idle, Trace


class TestCpuPlayback:
    def test_full_duty_duration_is_cycles_over_frequency(self, sut):
        run = sut.run(Trace([CpuWork(3e9, 1.0)]), CPU_BOUND)
        top_hz = sut.cpu_spec.stock_frequency_hz  # 9 x 333 MHz
        assert run.duration_s == pytest.approx(3e9 / top_hz)

    def test_underclock_stretches_busy_work(self, sut):
        trace = Trace([CpuWork(3e9, 1.0)])
        base = sut.run(trace, CPU_BOUND)
        sut.apply_setting(PvcSetting(10))
        slowed = sut.run(trace, CPU_BOUND)
        assert slowed.duration_s == pytest.approx(
            base.duration_s / 0.9
        )

    def test_low_duty_work_stretches_sublinearly(self, sut):
        """Gaps are external latency: slowing the CPU stretches only the
        busy share, so low-duty work pays less than 1/(1-u)."""
        trace = Trace([ClientWork(3e9, 0.5)])
        base = sut.run(trace, CPU_BOUND)
        sut.apply_setting(PvcSetting(10))
        slowed = sut.run(trace, CPU_BOUND)
        ratio = slowed.duration_s / base.duration_s
        assert 1.0 < ratio < 1.0 / 0.9

    def test_low_duty_runs_at_lower_power(self, sut):
        busy = sut.run(Trace([CpuWork(3e9, 1.0)]), CPU_BOUND)
        idleish = sut.run(Trace([ClientWork(3e9, 0.3)]), CPU_BOUND)
        assert idleish.avg_cpu_power_w < busy.avg_cpu_power_w / 2

    def test_energy_additivity(self, sut):
        """Playing two segments equals the sum of playing each."""
        seg_a = CpuWork(1e9, 1.0)
        seg_b = ClientWork(2e9, 0.5)
        both = sut.run(Trace([seg_a, seg_b]), CPU_BOUND)
        a = sut.run(Trace([seg_a]), CPU_BOUND)
        b = sut.run(Trace([seg_b]), CPU_BOUND)
        assert both.cpu_joules == pytest.approx(a.cpu_joules + b.cpu_joules)
        assert both.duration_s == pytest.approx(
            a.duration_s + b.duration_s
        )
        assert both.wall_joules == pytest.approx(
            a.wall_joules + b.wall_joules
        )


class TestDiskPlayback:
    def test_disk_time_is_frequency_invariant(self, sut):
        trace = Trace([DiskAccess(10, 1e6, sequential=True)])
        base = sut.run(trace, IO_MIXED)
        sut.apply_setting(PvcSetting(15, VoltageDowngrade.MEDIUM))
        slowed = sut.run(trace, IO_MIXED)
        assert slowed.duration_s == pytest.approx(base.duration_s)

    def test_disk_rail_energy_recorded(self, sut):
        run = sut.run(Trace([DiskAccess(1, 72e6, sequential=True)]),
                      IO_MIXED)
        assert run.disk_energy.joules_5v > 0
        assert run.disk_energy.joules_12v > run.disk_energy.joules_5v

    def test_cpu_near_idle_during_disk(self, sut):
        run = sut.run(Trace([DiskAccess(1, 72e6, sequential=True)]),
                      IO_MIXED)
        assert run.avg_cpu_power_w < 7.0

    def test_diskless_system_rejects_disk_traces(self):
        sut = paper_sut(has_disk=False)
        with pytest.raises(ValueError):
            sut.run(Trace([DiskAccess(1, 100, sequential=True)]))


class TestIdleAndFixedDraws:
    def test_idle_second(self, sut):
        run = sut.run(Trace([Idle(1.0)]), CPU_BOUND)
        assert run.duration_s == pytest.approx(1.0)
        assert 3.5 < run.cpu_joules < 5.0  # idle CPU watts
        assert run.gpu_joules == pytest.approx(sut.gpu.idle_w)

    def test_gpu_excluded_when_absent(self):
        sut = paper_sut(has_gpu=False)
        run = sut.run(Trace([Idle(1.0)]), CPU_BOUND)
        assert run.gpu_joules == 0.0

    def test_wall_includes_psu_loss(self, sut):
        run = sut.run(Trace([Idle(1.0)]), CPU_BOUND)
        assert run.wall_joules > run.dc_joules


class TestTable1Buildup:
    def test_all_rows_within_tolerance(self, sut):
        rows = targets.TABLE1_ROWS
        assert sut.soft_off_wall_power_w() == pytest.approx(
            rows[0].watts, abs=targets.TABLE1_WATTS_TOLERANCE
        )
        for row in rows[1:]:
            measured = sut.idle_wall_power_w(
                with_cpu=row.with_cpu, dimm_count=row.dimm_count,
                with_gpu=row.with_gpu, with_disk=False,
            )
            assert measured == pytest.approx(
                row.watts, abs=targets.TABLE1_WATTS_TOLERANCE
            ), row.description

    def test_cpu_install_more_than_doubles_draw(self, sut):
        """Paper: 'the power draw more than doubles' with the CPU."""
        without = sut.idle_wall_power_w(
            with_cpu=False, dimm_count=0, with_gpu=False, with_disk=False
        )
        with_cpu = sut.idle_wall_power_w(
            with_cpu=True, dimm_count=0, with_gpu=False, with_disk=False
        )
        assert with_cpu > 2 * without

    def test_cpu_fraction_of_system_power(self, sut):
        """Paper Sec. 3.2: busy CPU ~25% of total system wall power."""
        run = sut.run(
            Trace([CpuWork(3e9, 1.0)]), IO_MIXED
        )
        fraction = run.cpu_joules / run.wall_joules
        assert fraction == pytest.approx(
            targets.CPU_FRACTION_OF_SYSTEM_POWER, abs=0.10
        )


class TestMeasurementArithmetic:
    def test_run_measurement_add(self, sut):
        a = sut.run(Trace([CpuWork(1e9, 1.0)]), CPU_BOUND)
        b = sut.run(Trace([Idle(0.5)]), CPU_BOUND)
        total = a + b
        assert total.duration_s == pytest.approx(
            a.duration_s + b.duration_s
        )
        assert total.cpu_joules == pytest.approx(
            a.cpu_joules + b.cpu_joules
        )
        assert len(total.timeline) == len(a.timeline) + len(b.timeline)

    def test_component_joules_keys(self, sut):
        run = sut.run(Trace([Idle(0.1)]), CPU_BOUND)
        assert set(run.component_joules()) == {
            "cpu", "memory", "disk", "board", "gpu", "fan",
        }
