"""PSU efficiency curve, DRAM power, fixed components."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.components import CpuFan, Gpu, Motherboard
from repro.hardware.memory import Memory, MemorySpec
from repro.hardware.psu import Psu, PsuSpec


class TestPsu:
    def test_efficiency_at_20pct_load(self):
        """Paper Sec. 3.2 estimates ~83% at the system's ~20% load."""
        psu = Psu()
        assert psu.efficiency(0.20 * 450) == pytest.approx(0.83, abs=0.01)

    def test_efficiency_interpolates(self):
        psu = Psu()
        e10 = psu.efficiency(45.0)
        e15 = psu.efficiency(67.5)
        e20 = psu.efficiency(90.0)
        assert e10 < e15 < e20

    def test_wall_exceeds_dc(self):
        psu = Psu()
        for load in (10, 50, 100, 300):
            assert psu.wall_power_w(load) > load

    def test_standby(self):
        psu = Psu(PsuSpec(standby_w=4.5))
        assert psu.wall_power_w(0) == 4.5

    @given(load=st.floats(min_value=0.1, max_value=450.0))
    def test_loss_non_negative(self, load):
        psu = Psu()
        assert psu.loss_w(load) > 0

    def test_wall_power_monotone(self):
        psu = Psu()
        loads = [5, 20, 60, 120, 250, 400]
        walls = [psu.wall_power_w(x) for x in loads]
        assert walls == sorted(walls)

    def test_curve_validation(self):
        with pytest.raises(ValueError):
            PsuSpec(curve=[(0.0, 0.5)])
        with pytest.raises(ValueError):
            PsuSpec(curve=[(0.0, 0.0), (1.0, 0.9)])
        with pytest.raises(ValueError):
            PsuSpec(rating_w=0)


class TestMemory:
    def test_idle_two_dimms_matches_table1(self):
        """Table 1: +1G adds ~4 W, the second DIMM ~1.5 W (~5.5 W DC)."""
        mem = Memory(MemorySpec())
        assert mem.idle_power_w() == pytest.approx(5.45, abs=0.2)

    def test_activity_increases_power(self):
        mem = Memory(MemorySpec())
        assert mem.power_w(1.0) > mem.power_w(0.0)

    def test_underclock_reduces_active_power(self):
        """Paper Sec. 3: slowing the FSB slows DRAM and trims its power."""
        spec = MemorySpec()
        stock = Memory(spec, fsb_hz=333e6)
        slowed = Memory(spec, fsb_hz=0.85 * 333e6)
        assert slowed.power_w(1.0) < stock.power_w(1.0)
        assert slowed.idle_power_w() == pytest.approx(stock.idle_power_w())

    def test_clock_follows_fsb(self):
        spec = MemorySpec(fsb_multiplier=4.0)
        mem = Memory(spec, fsb_hz=300e6)
        assert mem.clock_hz == pytest.approx(1.2e9)

    def test_invalid_activity(self):
        with pytest.raises(ValueError):
            Memory(MemorySpec()).power_w(1.5)

    def test_zero_dimms_draw_nothing(self):
        mem = Memory(MemorySpec(dimm_count=0))
        assert mem.idle_power_w() == 0.0


class TestComponents:
    def test_validation(self):
        with pytest.raises(ValueError):
            Motherboard(on_w=-1)
        with pytest.raises(ValueError):
            Gpu(idle_w=-0.1)
        with pytest.raises(ValueError):
            CpuFan(w=-2)

    def test_defaults_positive(self):
        board = Motherboard()
        assert board.standby_w > 0 and board.on_w > 0
        assert Gpu().idle_w > 0
        assert CpuFan().w > 0
