"""Hardware edge cases: mechanism interplay and custom configurations."""

import pytest

from repro.hardware.cpu import (
    Cpu,
    EffectiveVoltageTable,
    PvcSetting,
    VoltageDowngrade,
    e8500_like_spec,
)
from repro.hardware.dvfs import CappedGovernor, UtilizationGovernor
from repro.hardware.profiles import paper_sut
from repro.hardware.psu import Psu, PsuSpec
from repro.hardware.sensors import EpuSensor
from repro.hardware.system import CPU_BOUND, SystemUnderTest
from repro.hardware.trace import CpuWork, Idle, Trace


class TestMechanismInterplay:
    def test_capping_and_underclocking_compose(self):
        """The two knobs are orthogonal: a cap under an underclocked FSB
        yields multiplier x scaled-FSB."""
        spec = e8500_like_spec()
        cpu = Cpu(spec, PvcSetting(10))
        governor = CappedGovernor(max_multiplier=7)
        pstate = governor.select_pstate(cpu, 1.0)
        assert pstate.multiplier == 7
        assert cpu.frequency_hz(pstate) == pytest.approx(
            7 * 333e6 * 0.9
        )

    def test_voltage_downgrade_composes_with_capping(self):
        spec = e8500_like_spec()
        cpu = Cpu(spec, PvcSetting(0, VoltageDowngrade.MEDIUM))
        governor = CappedGovernor(max_multiplier=7)
        pstate = governor.select_pstate(cpu, 1.0)
        # downgraded VID of the x7 state
        assert cpu.voltage(pstate) == pytest.approx(1.100 - 0.125)

    def test_deeper_underclock_never_speeds_up(self):
        spec = e8500_like_spec()
        governor = UtilizationGovernor()
        freqs = []
        for pct in (0, 5, 10, 15, 20):
            cpu = Cpu(spec, PvcSetting(pct))
            pstate = governor.select_pstate(cpu, 1.0)
            freqs.append(cpu.frequency_hz(pstate))
        assert freqs == sorted(freqs, reverse=True)


class TestCustomConfigurations:
    def test_custom_psu_curve(self):
        psu = Psu(PsuSpec(
            rating_w=300.0,
            curve=[(0.0, 0.5), (0.5, 0.9), (1.0, 0.8)],
        ))
        assert psu.efficiency(150.0) == pytest.approx(0.9)
        assert psu.efficiency(300.0) == pytest.approx(0.8)
        assert psu.efficiency(75.0) == pytest.approx(0.7)
        # beyond rating clamps to the last point
        assert psu.efficiency(600.0) == pytest.approx(0.8)

    def test_voltage_table_entries_roundtrip(self):
        entries = {(5.0, VoltageDowngrade.SMALL): 1.17}
        table = EffectiveVoltageTable(entries)
        assert table.entries() == entries
        assert table.lookup(PvcSetting(5, VoltageDowngrade.SMALL)) == 1.17
        assert table.lookup(PvcSetting(10, VoltageDowngrade.SMALL)) is None

    def test_sut_without_disk_and_gpu_idles_cheaper(self):
        full = paper_sut()
        bare = paper_sut(has_gpu=False, has_disk=False)
        assert (
            bare.idle_wall_power_w(with_disk=False)
            < full.idle_wall_power_w()
        )

    def test_mem_activity_coupling(self):
        eager = SystemUnderTest(mem_activity_coupling=1.0)
        lazy = SystemUnderTest(mem_activity_coupling=0.0)
        trace = Trace([CpuWork(3e9, 1.0)])
        assert (
            eager.run(trace, CPU_BOUND).memory_joules
            > lazy.run(trace, CPU_BOUND).memory_joules
        )


class TestSensorPhases:
    def test_phase_changes_samples_not_truth(self, sut):
        trace = Trace([CpuWork(6e9, 1.0), Idle(1.3), CpuWork(3e9, 1.0)])
        run = sut.run(trace, CPU_BOUND)
        early = EpuSensor(phase_s=0.1).read(run)
        late = EpuSensor(phase_s=0.9).read(run)
        assert len(early.samples_w) >= len(late.samples_w)
        # Both are estimates of the same truth.
        for reading in (early, late):
            assert reading.joules == pytest.approx(
                run.cpu_joules, rel=0.5
            )

    def test_faster_sampling_reduces_error(self, sut):
        trace = Trace([
            CpuWork(2.0e9, 1.0), Idle(0.37),
            CpuWork(3.7e9, 1.0), Idle(0.51),
        ] * 6)
        run = sut.run(trace, CPU_BOUND)
        coarse = abs(EpuSensor(sample_period_s=1.0).sampling_error(run))
        fine = abs(EpuSensor(sample_period_s=0.05).sampling_error(run))
        assert fine <= coarse + 1e-9

    def test_empty_run(self, sut):
        run = sut.run(Trace([]), CPU_BOUND)
        reading = EpuSensor().read(run)
        assert reading.joules == 0.0
        assert EpuSensor().sampling_error(run) == 0.0


class TestSettingSweepMonotonicity:
    def test_energy_monotone_in_downgrade_at_fixed_underclock(self, sut):
        """At any underclock level, medium saves more than small saves
        more than none (full pipeline, pure CPU work)."""
        trace = Trace([CpuWork(3e10, 1.0)])
        for pct in (5, 10, 15):
            joules = []
            for downgrade in (VoltageDowngrade.NONE,
                              VoltageDowngrade.SMALL,
                              VoltageDowngrade.MEDIUM):
                sut.apply_setting(PvcSetting(pct, downgrade))
                joules.append(sut.run(trace, CPU_BOUND).cpu_joules)
            sut.apply_setting(PvcSetting())
            assert joules == sorted(joules, reverse=True)
