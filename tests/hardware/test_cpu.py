"""CPU model: p-states, underclocking, voltage, power."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.cpu import (
    Cpu,
    CpuSpec,
    EffectiveVoltageTable,
    PState,
    PvcSetting,
    STOCK_SETTING,
    VoltageDowngrade,
    e8500_like_spec,
)


@pytest.fixture()
def spec() -> CpuSpec:
    return e8500_like_spec()


class TestPvcSetting:
    def test_stock_is_stock(self):
        assert STOCK_SETTING.is_stock
        assert STOCK_SETTING.fsb_scale == 1.0

    def test_underclock_scale(self):
        assert PvcSetting(5).fsb_scale == pytest.approx(0.95)
        assert PvcSetting(15).fsb_scale == pytest.approx(0.85)

    def test_invalid_underclock_rejected(self):
        with pytest.raises(ValueError):
            PvcSetting(-1)
        with pytest.raises(ValueError):
            PvcSetting(100)

    def test_describe(self):
        assert PvcSetting().describe() == "stock"
        label = PvcSetting(5, VoltageDowngrade.MEDIUM).describe()
        assert "5" in label and "medium" in label


class TestFrequencies:
    def test_paper_example_frequencies(self, spec):
        """Paper Sec. 3: 9 x 333 MHz = 3 GHz top, 6x = 2 GHz low."""
        cpu = Cpu(spec)
        assert cpu.top_frequency_hz == pytest.approx(9 * 333e6)
        assert cpu.frequency_hz(spec.lowest_pstate) == pytest.approx(
            6 * 333e6
        )

    def test_underclock_scales_every_pstate(self, spec):
        """Underclocking keeps all multipliers, scaling each frequency."""
        stock = Cpu(spec)
        slowed = Cpu(spec, PvcSetting(10))
        assert len(slowed.available_pstates) == len(stock.available_pstates)
        for pstate in spec.pstates:
            assert slowed.frequency_hz(pstate) == pytest.approx(
                0.90 * stock.frequency_hz(pstate)
            )

    def test_multiplier_cap_example(self, spec):
        """The paper's example: capping at 7 tops out at 2.33 GHz."""
        cpu = Cpu(spec)
        capped = [p for p in cpu.available_pstates if p.multiplier <= 7]
        top = max(p.multiplier for p in capped) * cpu.fsb_hz
        assert top == pytest.approx(7 * 333e6)


class TestVoltage:
    def test_downgrade_lowers_voltage(self, spec):
        stock = Cpu(spec)
        small = Cpu(spec, PvcSetting(0, VoltageDowngrade.SMALL))
        medium = Cpu(spec, PvcSetting(0, VoltageDowngrade.MEDIUM))
        v0 = stock.voltage(spec.top_pstate)
        assert small.voltage(spec.top_pstate) < v0
        assert medium.voltage(spec.top_pstate) < small.voltage(
            spec.top_pstate
        )

    def test_vid_ladder_monotone(self, spec):
        cpu = Cpu(spec)
        voltages = [cpu.voltage(p) for p in spec.pstates]
        assert voltages == sorted(voltages)

    def test_effective_table_overrides(self, spec):
        setting = PvcSetting(5, VoltageDowngrade.MEDIUM)
        table = EffectiveVoltageTable({(5.0, VoltageDowngrade.MEDIUM): 1.0})
        cpu = Cpu(spec, setting, table)
        assert cpu.voltage(spec.top_pstate) == pytest.approx(1.0)
        # lower p-states scale by VID ratio
        low = cpu.voltage(spec.lowest_pstate)
        assert low == pytest.approx(1.025 / 1.250)

    def test_table_miss_falls_back_to_offsets(self, spec):
        table = EffectiveVoltageTable({})
        cpu = Cpu(spec, PvcSetting(5, VoltageDowngrade.SMALL), table)
        expected = spec.top_pstate.vid_volts - 0.050
        assert cpu.voltage(spec.top_pstate) == pytest.approx(expected)


class TestPower:
    def test_busy_power_magnitude(self, spec):
        """Stock fully-busy power ~38 W (E8500-class)."""
        cpu = Cpu(spec)
        watts = cpu.busy_power_w(spec.top_pstate)
        assert 35.0 < watts < 42.0

    def test_idle_power_magnitude(self, spec):
        cpu = Cpu(spec)
        assert 3.0 < cpu.idle_power_w() < 6.0

    def test_power_increases_with_activity(self, spec):
        cpu = Cpu(spec)
        low = cpu.busy_power_w(spec.top_pstate, activity=0.2)
        high = cpu.busy_power_w(spec.top_pstate, activity=0.9)
        assert high > low

    def test_power_drops_with_underclock_at_fixed_voltage(self, spec):
        stock = Cpu(spec)
        slowed = Cpu(spec, PvcSetting(15))
        assert (
            slowed.busy_power_w(spec.top_pstate)
            < stock.busy_power_w(spec.top_pstate)
        )

    @given(activity=st.floats(min_value=0.0, max_value=1.0))
    def test_power_at_least_static(self, activity):
        spec = e8500_like_spec()
        cpu = Cpu(spec)
        assert (
            cpu.busy_power_w(spec.top_pstate, activity)
            >= spec.static_power_w
        )

    def test_invalid_activity_rejected(self, spec):
        cpu = Cpu(spec)
        with pytest.raises(ValueError):
            cpu.busy_power_w(spec.top_pstate, activity=1.5)


class TestSpecValidation:
    def test_requires_pstates(self):
        with pytest.raises(ValueError):
            CpuSpec("x", 333e6, [], c_eff=1e-9, static_power_w=1.0)

    def test_pstates_sorted_by_multiplier(self):
        spec = CpuSpec(
            "x", 333e6,
            [PState(9, 1.25), PState(6, 1.0)],
            c_eff=1e-9, static_power_w=1.0,
        )
        assert [p.multiplier for p in spec.pstates] == [6, 9]

    def test_pstate_validation(self):
        with pytest.raises(ValueError):
            PState(0, 1.0)
        with pytest.raises(ValueError):
            PState(9, 0.0)

    def test_with_setting_copies(self):
        spec = e8500_like_spec()
        cpu = Cpu(spec)
        other = cpu.with_setting(PvcSetting(5, VoltageDowngrade.SMALL))
        assert other.setting.underclock_pct == 5
        assert cpu.setting.is_stock
