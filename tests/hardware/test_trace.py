"""Work-segment model: validation, totals, scaling, merging."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.trace import ClientWork, CpuWork, DiskAccess, Idle, Trace


class TestSegmentValidation:
    def test_cpu_work(self):
        with pytest.raises(ValueError):
            CpuWork(-1.0)
        with pytest.raises(ValueError):
            CpuWork(1.0, utilization=0.0)
        with pytest.raises(ValueError):
            CpuWork(1.0, utilization=1.5)

    def test_disk_access(self):
        with pytest.raises(ValueError):
            DiskAccess(-1, 0, sequential=True)
        with pytest.raises(ValueError):
            DiskAccess(1, -5, sequential=True)
        with pytest.raises(ValueError):
            DiskAccess(1, 5, sequential=True, cpu_overlap_utilization=2.0)

    def test_idle(self):
        with pytest.raises(ValueError):
            Idle(-0.1)


class TestTotals:
    def test_totals(self):
        trace = Trace([
            CpuWork(1e9, 1.0),
            ClientWork(2e9, 0.5),
            DiskAccess(3, 300.0, sequential=False),
            DiskAccess(1, 100.0, sequential=True),
            Idle(1.0),
        ])
        assert trace.total_cpu_cycles == 1e9
        assert trace.total_client_cycles == 2e9
        assert trace.total_disk_bytes == 400.0
        assert trace.total_disk_ops == 4
        assert len(trace) == 5

    def test_extend(self):
        a = Trace([CpuWork(1.0)])
        b = Trace([CpuWork(2.0)])
        a.extend(b)
        assert a.total_cpu_cycles == 3.0


class TestScaled:
    def test_linear_scaling(self):
        trace = Trace([
            CpuWork(1e9, 0.8), DiskAccess(10, 1000.0, sequential=True),
            Idle(2.0),
        ])
        doubled = trace.scaled(2.0)
        assert doubled.total_cpu_cycles == 2e9
        assert doubled.total_disk_bytes == 2000.0
        assert doubled.segments[2].seconds == 4.0

    def test_scaling_preserves_utilization(self):
        trace = Trace([CpuWork(1e9, 0.42, "x")])
        scaled = trace.scaled(3.0)
        assert scaled.segments[0].utilization == 0.42
        assert scaled.segments[0].label == "x"

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            Trace([]).scaled(-1.0)

    @given(factor=st.floats(min_value=0.0, max_value=100.0))
    def test_scaling_is_linear_in_cycles(self, factor):
        trace = Trace([CpuWork(1e6, 1.0), ClientWork(5e5, 0.5)])
        scaled = trace.scaled(factor)
        assert scaled.total_cpu_cycles == pytest.approx(1e6 * factor)
        assert scaled.total_client_cycles == pytest.approx(5e5 * factor)


class TestMerged:
    def test_adjacent_same_kind_merge(self):
        trace = Trace([
            CpuWork(1.0, 1.0, "a"), CpuWork(2.0, 1.0, "a"),
            CpuWork(3.0, 0.5, "a"),
        ])
        merged = trace.merged()
        assert len(merged) == 2
        assert merged.segments[0].cycles == 3.0

    def test_merge_preserves_totals(self):
        trace = Trace([
            CpuWork(1.0), CpuWork(2.0),
            DiskAccess(1, 10.0, sequential=True, label="t"),
            DiskAccess(2, 20.0, sequential=True, label="t"),
            Idle(1.0), Idle(2.0),
        ])
        merged = trace.merged()
        assert merged.total_cpu_cycles == trace.total_cpu_cycles
        assert merged.total_disk_bytes == trace.total_disk_bytes
        assert merged.total_disk_ops == trace.total_disk_ops

    def test_different_kinds_do_not_merge(self):
        trace = Trace([CpuWork(1.0), ClientWork(1.0), CpuWork(1.0)])
        assert len(trace.merged()) == 3
