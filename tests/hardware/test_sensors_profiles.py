"""Sensors (EPU sampling, meters) and the calibrated profile."""

import pytest

from repro.calibration import targets
from repro.hardware.cpu import PvcSetting, VoltageDowngrade, e8500_like_spec
from repro.hardware.profiles import (
    build_voltage_table,
    paper_sut,
    pvc_settings_grid,
)
from repro.hardware.sensors import CurrentProbe, EpuSensor, WallMeter
from repro.hardware.system import CPU_BOUND, IO_MIXED
from repro.hardware.trace import CpuWork, DiskAccess, Idle, Trace


class TestEpuSensor:
    def test_exact_on_constant_power(self, sut):
        """Constant power: sampled estimate equals the true integral."""
        run = sut.run(Trace([CpuWork(30e9, 1.0)]), CPU_BOUND)  # 10 s
        sensor = EpuSensor()
        estimate = sensor.read(run).joules
        assert estimate == pytest.approx(run.cpu_joules, rel=1e-9)

    def test_biased_on_bursty_short_runs(self, sut):
        """1 Hz sampling misrepresents sub-second power changes -- the
        drawback the paper acknowledges for its GUI-sampling method."""
        trace = Trace([CpuWork(0.9e9, 1.0), Idle(0.7), CpuWork(2.2e9, 1.0)])
        run = sut.run(trace, CPU_BOUND)
        error = EpuSensor().sampling_error(run)
        assert error != 0.0
        assert abs(error) < 0.5

    def test_sample_count(self, sut):
        run = sut.run(Trace([CpuWork(9e9, 1.0)]), CPU_BOUND)  # 3 s
        samples = EpuSensor().read(run).samples_w
        assert len(samples) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            EpuSensor(sample_period_s=0)


class TestOtherInstruments:
    def test_wall_meter(self, sut):
        run = sut.run(Trace([Idle(2.0)]), CPU_BOUND)
        assert WallMeter().read_joules(run) == run.wall_joules

    def test_current_probe_rails(self, sut):
        run = sut.run(
            Trace([DiskAccess(1, 72e6, sequential=True)]), IO_MIXED
        )
        rails = CurrentProbe().read(run)
        assert rails.total_joules == pytest.approx(run.disk_joules)


class TestCalibratedProfile:
    def test_grid_has_seven_points(self):
        assert len(pvc_settings_grid()) == 7

    def test_voltage_tables_present_for_both_classes(self):
        sut = paper_sut()
        assert CPU_BOUND in sut.voltage_tables
        assert IO_MIXED in sut.voltage_tables

    def test_cpu_bound_inversion_round_trip(self):
        """Simulating pure CPU work at a calibrated setting reproduces
        the paper's energy ratio (the inversion is exact)."""
        sut = paper_sut()
        trace = Trace([CpuWork(3e10, 1.0)])
        base = sut.run(trace, CPU_BOUND)
        for downgrade in (VoltageDowngrade.SMALL, VoltageDowngrade.MEDIUM):
            for pct in (5, 10, 15):
                sut.apply_setting(PvcSetting(pct, downgrade))
                run = sut.run(trace, CPU_BOUND)
                expected = targets.energy_ratio_target(
                    "mysql", downgrade.value, pct
                )
                assert run.cpu_joules / base.cpu_joules == pytest.approx(
                    expected, abs=0.002
                )
        sut.apply_setting(PvcSetting())

    def test_effective_voltages_drift_up_with_underclock(self):
        """The paper's Fig. 4 behaviour: measured (effective) voltage
        rises slightly with deeper underclocking, so EDP worsens."""
        table = build_voltage_table(CPU_BOUND, e8500_like_spec())
        for downgrade in (VoltageDowngrade.SMALL, VoltageDowngrade.MEDIUM):
            volts = [
                table.lookup(PvcSetting(pct, downgrade))
                for pct in (5, 10, 15)
            ]
            assert volts == sorted(volts)

    def test_medium_below_small(self):
        table = build_voltage_table(CPU_BOUND, e8500_like_spec())
        for pct in (5, 10, 15):
            small = table.lookup(PvcSetting(pct, VoltageDowngrade.SMALL))
            medium = table.lookup(PvcSetting(pct, VoltageDowngrade.MEDIUM))
            assert medium < small
