"""Vectorized compiled-trace playback vs the per-segment loop path."""

import pytest

from repro.hardware.cpu import PvcSetting, VoltageDowngrade
from repro.hardware.profiles import paper_sut, pvc_settings_grid
from repro.hardware.system import SystemUnderTest
from repro.hardware.trace import (
    ClientWork,
    CompiledTrace,
    CpuWork,
    DiskAccess,
    Idle,
    Trace,
)

REL = 1e-9


def mixed_trace() -> Trace:
    """Every segment kind, several utilization levels, some zero work."""
    return Trace([
        CpuWork(3.1e9, 1.0, "server"),
        CpuWork(0.0, 1.0, "empty-cpu"),
        ClientWork(4.2e8, 0.35, "client"),
        DiskAccess(120, 7.5e7, sequential=False, label="random-read"),
        DiskAccess(4, 2.0e8, sequential=True, write=True, label="temp"),
        DiskAccess(0, 0.0, sequential=True, label="empty-disk"),
        CpuWork(9.0e8, 0.6, "mid-duty"),
        Idle(0.25, "stall"),
        Idle(0.0, "empty-idle"),
        ClientWork(1.0e8, 0.35, "client2"),
    ])


def assert_measurements_match(a, b):
    assert b.duration_s == pytest.approx(a.duration_s, rel=REL)
    assert b.cpu_joules == pytest.approx(a.cpu_joules, rel=REL)
    assert b.memory_joules == pytest.approx(a.memory_joules, rel=REL)
    assert b.disk_energy.joules_5v == pytest.approx(
        a.disk_energy.joules_5v, rel=REL, abs=1e-12
    )
    assert b.disk_energy.joules_12v == pytest.approx(
        a.disk_energy.joules_12v, rel=REL, abs=1e-12
    )
    assert b.board_joules == pytest.approx(a.board_joules, rel=REL)
    assert b.gpu_joules == pytest.approx(a.gpu_joules, rel=REL)
    assert b.fan_joules == pytest.approx(a.fan_joules, rel=REL)
    assert b.wall_joules == pytest.approx(a.wall_joules, rel=REL)


class TestCompiledTrace:
    def test_compile_roundtrip_counts(self):
        trace = mixed_trace()
        compiled = trace.compiled()
        assert len(compiled) == len(trace)
        assert compiled.labels[0] == "server"

    def test_compiled_memoized_and_invalidated(self):
        trace = mixed_trace()
        first = trace.compiled()
        assert trace.compiled() is first
        trace.add(Idle(1.0, "more"))
        second = trace.compiled()
        assert second is not first
        assert len(second) == len(first) + 1

    def test_from_trace_classifies_kinds(self):
        compiled = CompiledTrace.from_trace(mixed_trace())
        assert sorted(set(compiled.kinds.tolist())) == [0, 1, 2, 3]


class TestVectorizedPlayback:
    @pytest.mark.parametrize("setting", pvc_settings_grid())
    def test_matches_loop_path_across_settings(self, setting):
        sut = paper_sut()
        sut.apply_setting(setting)
        trace = mixed_trace()
        loop = sut.run(trace, "io_mixed")
        fast = sut.run_compiled(trace.compiled(), "io_mixed")
        assert_measurements_match(loop, fast)

    def test_matches_loop_path_cpu_bound(self):
        sut = paper_sut()
        sut.apply_setting(PvcSetting(5, VoltageDowngrade.MEDIUM))
        trace = mixed_trace()
        assert_measurements_match(
            sut.run(trace, "cpu_bound"),
            sut.run_compiled(trace, "cpu_bound"),
        )

    def test_timeline_reconstruction_matches(self):
        sut = paper_sut()
        trace = mixed_trace()
        loop = sut.run(trace, "io_mixed")
        fast = sut.run_compiled(trace, "io_mixed", with_timeline=True)
        assert len(fast.timeline) == len(loop.timeline)
        for a, b in zip(loop.timeline, fast.timeline):
            assert b.duration_s == pytest.approx(
                a.duration_s, rel=REL, abs=1e-15
            )
            assert b.cpu_w == pytest.approx(a.cpu_w, rel=REL, abs=1e-15)
            assert b.disk_w == pytest.approx(a.disk_w, rel=REL, abs=1e-15)
            assert b.label == a.label

    def test_timeline_omitted_by_default(self):
        sut = paper_sut()
        fast = sut.run_compiled(mixed_trace(), "io_mixed")
        assert fast.timeline == []

    def test_diskless_sut_rejects_disk_trace(self):
        sut = SystemUnderTest(has_disk=False)
        trace = Trace([DiskAccess(1, 4096, sequential=True)])
        with pytest.raises(ValueError):
            sut.run_compiled(trace.compiled())

    def test_empty_trace(self):
        sut = paper_sut()
        fast = sut.run_compiled(Trace().compiled())
        assert fast.duration_s == 0.0
        assert fast.cpu_joules == 0.0
