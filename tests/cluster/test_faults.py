"""Fault-injection & recovery layer: plans, retries, and the guards.

Covers the ISSUE-6 acceptance points: the empty-plan identity (a run
with an empty :class:`FaultPlan` is bitwise the run without one), the
same-seed determinism audit (one seeded RNG threads arrivals and fault
outcomes), conservation under faults (every arrival is served exactly
once or visibly dead-lettered, reconciling with SLA-miss accounting),
and the per-kind fault behaviors the simulator models.
"""

import json

import numpy as np
import pytest

from repro.cluster import (
    ClusterSimulator,
    ConsolidateRouter,
    DynamicConsolidateRouter,
    FaultPlan,
    FaultSpec,
    LeastLoadedRouter,
    RetryPolicy,
    RoundRobinRouter,
    load_fault_plan,
    uniform_fleet,
)
from repro.workloads.arrivals import poisson_arrivals, uniform_arrivals
from repro.workloads.selection import selection_workload


def _stream(count=60, distinct=10, mean_s=0.05, seed=1):
    queries = selection_workload(distinct).queries
    return poisson_arrivals(
        [queries[i % distinct] for i in range(count)], mean_s, seed=seed
    )


def _backlogged_stream(count=40, distinct=10, gap_s=0.01):
    """Back-to-back arrivals that keep every node continuously busy,
    so a crash deterministically strikes in-flight work."""
    queries = selection_workload(distinct).queries
    return uniform_arrivals(
        [queries[i % distinct] for i in range(count)], gap_s
    )


def _conserves(m, stream):
    answered = sorted(
        [(r.sql, r.arrival_s) for r in m.responses]
        + [(s.sql, s.arrival_s) for s in m.shed]
    )
    return answered == sorted((a.sql, a.time_s) for a in stream)


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meltdown", "node00")

    def test_target_node_required(self):
        with pytest.raises(ValueError, match="target node"):
            FaultSpec("crash", "")

    def test_crash_times_validated(self):
        with pytest.raises(ValueError):
            FaultSpec("crash", "n", at_s=-1.0)
        with pytest.raises(ValueError):
            FaultSpec("crash", "n", at_s=5.0, recover_s=5.0)
        FaultSpec("crash", "n", at_s=5.0, recover_s=5.5)  # ok

    def test_window_validated(self):
        with pytest.raises(ValueError):
            FaultSpec("straggler", "n", start_s=-0.1, slowdown=2.0)
        with pytest.raises(ValueError):
            FaultSpec("unavailable", "n", start_s=2.0, end_s=2.0)
        # end_s=None means "until the end of the run"
        spec = FaultSpec("unavailable", "n", start_s=2.0)
        assert spec.in_window(1e9) and not spec.in_window(1.0)

    def test_probability_and_slowdown_ranges(self):
        with pytest.raises(ValueError):
            FaultSpec("wake-failure", "n", probability=0.0)
        with pytest.raises(ValueError):
            FaultSpec("wake-failure", "n", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec("straggler", "n", slowdown=1.0)

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_retry_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=3, backoff_s=0.5,
                             multiplier=2.0)
        assert policy.delay_s(1) == 0.5
        assert policy.delay_s(2) == 1.0
        assert policy.delay_s(3) == 2.0
        with pytest.raises(ValueError):
            policy.delay_s(0)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)


class TestPlanSerialization:
    def test_from_dict_round_trip(self):
        plan = FaultPlan.from_dict({
            "seed": 7,
            "faults": [
                {"kind": "crash", "node": "node00", "at_s": 3.0,
                 "recover_s": 5.0},
                {"kind": "wake-failure", "node": "node01",
                 "end_s": 2.0, "probability": 0.5},
            ],
        })
        assert plan.seed == 7 and len(plan.specs) == 2
        assert plan.crashes_for("node00")[0].recover_s == 5.0

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown keys"):
            FaultPlan.from_dict({
                "faults": [{"kind": "crash", "node": "n", "when": 3.0}],
            })

    def test_load_fault_plan(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "seed": 3,
            "faults": [{"kind": "unavailable", "node": "node00",
                        "start_s": 1.0, "end_s": 2.0}],
        }))
        plan = load_fault_plan(str(path))
        assert not plan.empty
        assert not plan.available("node00", 1.5)
        assert plan.available("node00", 2.5)
        assert plan.available("other", 1.5)

    def test_example_plan_parses(self):
        plan = load_fault_plan("examples/fault_plan.json")
        kinds = sorted(s.kind for s in plan.specs)
        assert kinds == [
            "crash", "straggler", "unavailable", "wake-failure",
        ]

    def test_plan_targeting_unknown_node_rejected(self, mysql_db):
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(2), RoundRobinRouter(),
            faults=FaultPlan([FaultSpec("crash", "ghost", at_s=1.0)]),
        )
        with pytest.raises(ValueError, match="unknown nodes"):
            sim.run(_stream(count=10))


class TestEmptyPlanIdentity:
    """An empty plan injects nothing and costs nothing: the schedule,
    energies, and full summary are identical to a plan-free run."""

    @pytest.mark.parametrize("router_factory", [
        RoundRobinRouter,
        LeastLoadedRouter,
        lambda: ConsolidateRouter(max_backlog_s=0.5),
        lambda: DynamicConsolidateRouter(max_backlog_s=0.5),
    ])
    def test_empty_plan_is_identity(self, mysql_db, router_factory):
        stream = _stream(count=50)
        base = ClusterSimulator(
            mysql_db, uniform_fleet(3, wake_latency_s=0.2),
            router_factory(),
        ).run(stream)
        faulted = ClusterSimulator(
            mysql_db, uniform_fleet(3, wake_latency_s=0.2),
            router_factory(), faults=FaultPlan(),
        ).run(stream)
        assert abs(base.wall_joules - faulted.wall_joules) <= 1e-9
        assert abs(base.edp - faulted.edp) <= 1e-9
        assert base.summary() == faulted.summary()
        assert [r.completion_s for r in base.responses] == [
            r.completion_s for r in faulted.responses
        ]

    def test_empty_plan_reports_no_faults(self, mysql_db):
        m = ClusterSimulator(
            mysql_db, uniform_fleet(2), RoundRobinRouter(),
            faults=FaultPlan(),
        ).run(_stream(count=20))
        assert m.faults is None
        assert "fault_crashes" not in m.summary()


class TestCrashRecovery:
    def test_crash_requeues_in_flight_work(self, mysql_db):
        stream = _backlogged_stream(count=40)
        plan = FaultPlan([
            FaultSpec("crash", "node00", at_s=0.5),
        ])
        m = ClusterSimulator(
            mysql_db, uniform_fleet(2), RoundRobinRouter(),
            faults=plan, retry=RetryPolicy(max_attempts=4,
                                           backoff_s=0.01),
        ).run(stream)
        report = m.faults
        assert report.crashes == 1
        assert report.requeued >= 1  # struck mid-backlog
        assert report.retries >= report.requeued
        assert report.wasted_joules > 0  # partial burn written off
        # The survivor absorbed everything: nothing lost, nothing shed.
        assert m.served == len(stream) and not m.shed
        assert _conserves(m, stream)

    def test_retried_queries_keep_original_arrival(self, mysql_db):
        """Response-time accounting must charge the whole outage, so a
        retried query's response is measured from its *first* arrival."""
        stream = _backlogged_stream(count=30)
        plan = FaultPlan([FaultSpec("crash", "node00", at_s=0.4)])
        m = ClusterSimulator(
            mysql_db, uniform_fleet(2), RoundRobinRouter(),
            faults=plan, retry=RetryPolicy(backoff_s=0.01),
        ).run(stream)
        assert _conserves(m, stream)
        affected = m.faults.affected
        assert affected  # some identity was marked
        retried = [r for r in m.responses
                   if (r.sql, r.arrival_s) in affected]
        assert retried
        for r in retried:
            assert r.response_s > 0

    def test_recovered_node_rejoins_through_wake(self, mysql_db):
        stream = _stream(count=60, mean_s=0.03)
        plan = FaultPlan([
            FaultSpec("crash", "node00", at_s=0.3, recover_s=0.6),
        ])
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(2, wake_latency_s=0.1),
            RoundRobinRouter(), faults=plan,
            retry=RetryPolicy(backoff_s=0.01),
        )
        schedule = sim.schedule(stream)
        node00 = sim.nodes[0]  # live node state after scheduling
        assert node00.crashed_s is None  # recovered by end of run
        assert node00.crash_log == [0.3]
        late = [w for w in node00.scheduled if w.start_s >= 0.6]
        assert late  # it took work again after recovery
        # ... but not before paying the wake transition.
        assert min(w.start_s for w in late) >= 0.6 + 0.1 - 1e-9
        m = sim.playback(schedule)
        assert _conserves(m, stream)

    def test_unrecoverable_crash_dead_letters(self, mysql_db):
        """With no fleet left, retries exhaust and queries are shed
        *with accounting*: shed == dead-lettered, and the SLA ledger
        still adds up (a dead-lettered query is a visible SLA miss)."""
        stream = _backlogged_stream(count=8, gap_s=0.05)
        plan = FaultPlan([FaultSpec("crash", "node00", at_s=0.12)])
        m = ClusterSimulator(
            mysql_db, uniform_fleet(1), RoundRobinRouter(),
            faults=plan,
            retry=RetryPolicy(max_attempts=2, backoff_s=0.01),
        ).run(stream)
        report = m.faults
        assert report.dead_lettered > 0
        assert len(m.shed) == report.dead_lettered
        assert m.served + len(m.shed) == len(stream)
        assert _conserves(m, stream)  # shed are accounted, not lost
        sla_s = 10.0
        split = m.sla_split(sla_s)
        assert split["affected_total"] + split["unaffected_total"] == (
            len(stream)
        )
        # Shed queries count as misses on the affected side.
        assert m.sla_violations(sla_s) >= report.dead_lettered
        misses = (
            split["affected_total"] - split["affected_met"]
            + split["unaffected_total"] - split["unaffected_met"]
        )
        assert misses == m.sla_violations(sla_s)


class TestWakeFailureAndStraggler:
    def test_wake_failures_are_survived_and_counted(self, mysql_db):
        plan = FaultPlan([
            FaultSpec("wake-failure", "node01", end_s=1.0,
                      probability=1.0),
        ])
        m = ClusterSimulator(
            mysql_db, uniform_fleet(2, wake_latency_s=0.05),
            DynamicConsolidateRouter(max_backlog_s=0.1),
            faults=plan, retry=RetryPolicy(backoff_s=0.01),
        ).run(_stream(count=60, mean_s=0.02))
        assert m.faults.failed_wakes >= 1
        assert m.served + len(m.shed) == 60

    def test_straggler_window_slows_and_costs(self, mysql_db):
        stream = _backlogged_stream(count=20)
        healthy = ClusterSimulator(
            mysql_db, uniform_fleet(1), RoundRobinRouter(),
        ).run(stream)
        slowed = ClusterSimulator(
            mysql_db, uniform_fleet(1), RoundRobinRouter(),
            faults=FaultPlan([
                FaultSpec("straggler", "node00", slowdown=3.0),
            ]),
        ).run(stream)
        assert slowed.p95_response_s > healthy.p95_response_s
        assert slowed.horizon_s > healthy.horizon_s
        assert slowed.wall_joules > healthy.wall_joules
        assert slowed.served == healthy.served == len(stream)

    def test_unavailable_node_is_skipped(self, mysql_db):
        plan = FaultPlan([
            FaultSpec("unavailable", "node01", start_s=0.0),
        ])
        m = ClusterSimulator(
            mysql_db, uniform_fleet(2), RoundRobinRouter(),
            faults=plan, retry=RetryPolicy(backoff_s=0.01),
        ).run(_stream(count=30))
        by_name = {n.name: n for n in m.nodes}
        assert by_name["node01"].queries == 0
        assert by_name["node00"].queries == 30
        assert m.served == 30


class TestDeterminism:
    def _plan(self):
        return FaultPlan([
            FaultSpec("crash", "node00", at_s=0.4, recover_s=0.9),
            FaultSpec("wake-failure", "node01", end_s=1.5,
                      probability=0.5),
            FaultSpec("straggler", "node02", start_s=0.2, end_s=1.0,
                      slowdown=2.0),
        ], seed=11)

    def test_same_seed_same_summary(self, mysql_db):
        """The same plan replayed over the same stream reproduces the
        measurement exactly -- including the probabilistic wake
        outcomes, which draw from the plan's own seeded RNG."""
        stream = _stream(count=60, mean_s=0.02)

        def run():
            return ClusterSimulator(
                mysql_db, uniform_fleet(3, wake_latency_s=0.1),
                DynamicConsolidateRouter(max_backlog_s=0.2),
                faults=self._plan(),
                retry=RetryPolicy(backoff_s=0.01),
            ).run(stream)

        assert run().summary() == run().summary()

    def test_same_plan_object_reseeds_each_run(self, mysql_db):
        """One plan instance reused across schedule() calls reseeds at
        begin_run(), so back-to-back runs agree too."""
        stream = _stream(count=40, mean_s=0.02)
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(3, wake_latency_s=0.1),
            DynamicConsolidateRouter(max_backlog_s=0.2),
            faults=self._plan(), retry=RetryPolicy(backoff_s=0.01),
        )
        assert sim.run(stream).summary() == sim.run(stream).summary()

    def test_shared_rng_threads_arrivals_and_faults(self, mysql_db):
        """The determinism-audit path: ONE seeded generator drives both
        the arrival process and the fault outcomes, and the whole run
        is reproducible from that single seed."""
        queries = selection_workload(8).queries

        def run(seed):
            rng = np.random.default_rng(seed)
            stream = poisson_arrivals(
                [queries[i % 8] for i in range(50)], 0.02, rng=rng
            )
            plan = self._plan()
            plan.begin_run(rng)  # faults now draw from the same rng
            m = ClusterSimulator(
                mysql_db, uniform_fleet(3, wake_latency_s=0.1),
                DynamicConsolidateRouter(max_backlog_s=0.2),
                faults=plan, retry=RetryPolicy(backoff_s=0.01),
            ).run(stream)
            return m.summary()

        assert run(123) == run(123)
        # A different seed shifts the arrivals, hence the horizon.
        assert run(123) != run(321)


class TestConservationUnderFaults:
    def test_canonical_plan_conserves_all_arrivals(self, mysql_db):
        """The full canonical plan (all four fault kinds) across both
        fleet modes: every arrival is served exactly once or visibly
        dead-lettered, and the dead-letter count reconciles with the
        shed ledger the SLA accounting reads."""
        from repro.measurement.perf import fault_plan

        stream = _stream(count=80, mean_s=0.05, seed=3)
        for router in (
            RoundRobinRouter(),
            DynamicConsolidateRouter(max_backlog_s=1.0),
        ):
            m = ClusterSimulator(
                mysql_db, uniform_fleet(4, wake_latency_s=0.5),
                router, faults=fault_plan(),
                retry=RetryPolicy(max_attempts=4, backoff_s=0.05),
            ).run(stream)
            assert _conserves(m, stream)
            assert len(m.shed) == m.faults.dead_lettered
            assert m.faults.crashes == 1
            summary = m.summary()
            assert summary["fault_crashes"] == 1.0
            assert summary["served"] + summary["shed"] == len(stream)
