"""Vectorized event core: identity against the per-arrival oracle.

Covers the ISSUE-8 acceptance points: the chunked scheduler is a pure
re-expression of the per-arrival loop for every ``route_chunk`` router
(per-node energies, dispatch, peak power, and service quality agree to
<= 1e-9 on homogeneous *and* heterogeneous fleets), configurations the
fast path cannot express fall back to the loop under ``auto`` and fail
loudly under ``vectorized=True``, empty arrival streams produce
well-formed zero measurements instead of crashing, and columnar
schedules refuse the loop playback they cannot replay.
"""

import numpy as np
import pytest

from repro.cluster import (
    ClusterSimulator,
    ColumnarSchedule,
    ConsolidateRouter,
    FaultPlan,
    FaultSpec,
    HashSplitRouter,
    LeastLoadedRouter,
    MasterQueue,
    NodeGroup,
    RoundRobinRouter,
    hetero_fleet,
    uniform_fleet,
)
from repro.core.qed.policy import BatchPolicy
from repro.hardware.cpu import PvcSetting, VoltageDowngrade
from repro.obs import MetricsRegistry, SpanTracer
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.selection import selection_workload

REL = 1e-9

ROUTERS = {
    "round_robin": RoundRobinRouter,
    "least_loaded": LeastLoadedRouter,
    "hash_split": HashSplitRouter,
}


def _stream(count=120, distinct=10, mean_s=0.02, seed=1):
    queries = selection_workload(distinct).queries
    return poisson_arrivals(
        [queries[i % distinct] for i in range(count)], mean_s, seed=seed
    )


def _hetero_specs():
    eco = PvcSetting(10, VoltageDowngrade.MEDIUM)
    return hetero_fleet([
        NodeGroup(2, prefix="big", hw="paper"),
        NodeGroup(2, prefix="eco", hw="paper-nogpu", setting=eco,
                  capacity=0.8, sleep_wall_w=2.0),
    ])


def assert_identical(fast, slow):
    """Vectorized and legacy measurements of one run must agree."""
    assert fast.served == slow.served
    assert fast.horizon_s == pytest.approx(slow.horizon_s, rel=REL)
    assert fast.peak_power_w == pytest.approx(slow.peak_power_w, rel=REL)
    assert fast.wall_joules == pytest.approx(slow.wall_joules, rel=REL)
    assert fast.cpu_joules == pytest.approx(slow.cpu_joules, rel=REL)
    assert fast.modeled_wall_joules == pytest.approx(
        slow.modeled_wall_joules, rel=REL
    )
    for f, s in zip(fast.nodes, slow.nodes):
        assert f.name == s.name
        assert f.queries == s.queries
        assert f.busy_s == pytest.approx(s.busy_s, rel=REL, abs=1e-12)
        assert f.wall_joules == pytest.approx(s.wall_joules, rel=REL)
        assert f.playback.duration_s == pytest.approx(
            s.playback.duration_s, rel=REL
        )
    for q in (0.5, 0.95, 0.99):
        assert fast.response_percentile(q) == pytest.approx(
            slow.response_percentile(q), rel=REL
        )
    assert fast.mean_response_s == pytest.approx(
        slow.mean_response_s, rel=REL
    )
    assert fast.sla_violations(0.5) == slow.sla_violations(0.5)


class TestIdentity:
    @pytest.mark.parametrize("policy", sorted(ROUTERS))
    def test_vectorized_matches_loop(self, mysql_db, policy):
        stream = _stream()
        fast = ClusterSimulator(
            mysql_db, uniform_fleet(4), ROUTERS[policy]()
        ).run(stream, vectorized=True)
        slow = ClusterSimulator(
            mysql_db, uniform_fleet(4), ROUTERS[policy]()
        ).run(stream, vectorized=False)
        assert_identical(fast, slow)

    @pytest.mark.parametrize("policy", sorted(ROUTERS))
    def test_identity_on_hetero_fleet(self, mysql_db, policy):
        stream = _stream(count=80, mean_s=0.01, seed=4)
        fast = ClusterSimulator(
            mysql_db, _hetero_specs(), ROUTERS[policy]()
        ).run(stream, vectorized=True)
        slow = ClusterSimulator(
            mysql_db, _hetero_specs(), ROUTERS[policy]()
        ).run(stream, vectorized=False)
        assert_identical(fast, slow)

    def test_identity_under_contention(self, mysql_db):
        """A hot stream (deep queues, back-to-back pieces) is where the
        closed-form sequencing recurrence has to match the loop."""
        stream = _stream(count=200, mean_s=0.001, seed=9)
        fast = ClusterSimulator(
            mysql_db, uniform_fleet(2), LeastLoadedRouter()
        ).run(stream, vectorized=True)
        slow = ClusterSimulator(
            mysql_db, uniform_fleet(2), LeastLoadedRouter()
        ).run(stream, vectorized=False)
        assert_identical(fast, slow)

    def test_window_report_identity(self, mysql_db):
        stream = _stream(count=100, mean_s=0.01, seed=2)
        fast = ClusterSimulator(
            mysql_db, uniform_fleet(3), RoundRobinRouter()
        ).run(stream, vectorized=True)
        slow = ClusterSimulator(
            mysql_db, uniform_fleet(3), RoundRobinRouter()
        ).run(stream, vectorized=False)
        fw, sw = fast.window_report(0.25), slow.window_report(0.25)
        assert len(fw) == len(sw)
        for a, b in zip(fw, sw):
            # The last window's end is the horizon, where closed-form
            # cumsum and sequential addition may differ by one ulp.
            assert a.start_s == pytest.approx(b.start_s, rel=REL)
            assert a.end_s == pytest.approx(b.end_s, rel=REL)
            assert a.arrivals == b.arrivals
            assert a.served == b.served
            assert a.modeled_joules == pytest.approx(
                b.modeled_joules, rel=REL
            )
            assert a.p95_response_s == pytest.approx(
                b.p95_response_s, rel=REL, abs=1e-12
            )

    def test_auto_uses_fast_path_when_eligible(self, mysql_db):
        sim = ClusterSimulator(mysql_db, uniform_fleet(2),
                               RoundRobinRouter())
        assert sim.vectorized_ineligibility() is None
        schedule = sim.schedule(_stream(count=20))
        assert isinstance(schedule.columnar, ColumnarSchedule)

    def test_run_ids_agree_across_paths(self, mysql_db):
        stream = _stream(count=30)
        fast = ClusterSimulator(
            mysql_db, uniform_fleet(2), RoundRobinRouter()
        ).run(stream, vectorized=True)
        slow = ClusterSimulator(
            mysql_db, uniform_fleet(2), RoundRobinRouter()
        ).run(stream, vectorized=False)
        assert fast.run_id == slow.run_id


class TestFallbackAndErrors:
    def _ineligible_sims(self, mysql_db):
        batch = BatchPolicy(4, max_wait_s=0.2)
        return {
            "master QED": ClusterSimulator(
                mysql_db, uniform_fleet(2), RoundRobinRouter(),
                master_queue=MasterQueue(batch),
            ),
            "per-node QED": ClusterSimulator(
                mysql_db, uniform_fleet(2, queue_policy=batch),
                RoundRobinRouter(),
            ),
            "fault plan": ClusterSimulator(
                mysql_db, uniform_fleet(2), RoundRobinRouter(),
                faults=FaultPlan(
                    [FaultSpec("crash", "node00", at_s=0.5)]
                ),
            ),
            "span tracing": ClusterSimulator(
                mysql_db, uniform_fleet(2), RoundRobinRouter(),
                tracer=SpanTracer(),
            ),
            "streaming metrics": ClusterSimulator(
                mysql_db, uniform_fleet(2), RoundRobinRouter(),
                metrics=MetricsRegistry(window_s=0.5),
            ),
            "route_chunk": ClusterSimulator(
                mysql_db, uniform_fleet(2),
                ConsolidateRouter(max_backlog_s=0.2),
            ),
        }

    def test_ineligible_configs_name_their_reason(self, mysql_db):
        for fragment, sim in self._ineligible_sims(mysql_db).items():
            reason = sim.vectorized_ineligibility()
            assert reason is not None
            assert fragment.split()[-1] in reason, (fragment, reason)

    def test_forcing_vectorized_raises_with_reason(self, mysql_db):
        for fragment, sim in self._ineligible_sims(mysql_db).items():
            with pytest.raises(ValueError, match="vectorized"):
                sim.schedule(_stream(count=10), vectorized=True)

    def test_auto_falls_back_to_loop(self, mysql_db):
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(2),
            ConsolidateRouter(max_backlog_s=0.2),
        )
        schedule = sim.schedule(_stream(count=20))
        assert schedule.columnar is None

    def test_empty_fault_plan_stays_eligible(self, mysql_db):
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(2), RoundRobinRouter(),
            faults=FaultPlan(),
        )
        assert sim.vectorized_ineligibility() is None

    def test_columnar_schedule_refuses_loop_playback(self, mysql_db):
        sim = ClusterSimulator(mysql_db, uniform_fleet(2),
                               RoundRobinRouter())
        schedule = sim.schedule(_stream(count=20), vectorized=True)
        with pytest.raises(ValueError, match="loop"):
            sim.playback(schedule, mode="loop")

    def test_run_loop_mode_implies_legacy_schedule(self, mysql_db):
        stream = _stream(count=40)
        sim = ClusterSimulator(mysql_db, uniform_fleet(2),
                               RoundRobinRouter())
        loop = sim.run(stream, mode="loop")
        batched = ClusterSimulator(
            mysql_db, uniform_fleet(2), RoundRobinRouter()
        ).run(stream, vectorized=True)
        assert_identical(batched, loop)

    def test_run_loop_mode_rejects_forced_vectorized(self, mysql_db):
        sim = ClusterSimulator(mysql_db, uniform_fleet(2),
                               RoundRobinRouter())
        with pytest.raises(ValueError):
            sim.run(_stream(count=10), mode="loop", vectorized=True)


class TestEmptyStream:
    @pytest.mark.parametrize("vectorized", [None, False, True])
    def test_empty_stream_is_a_well_formed_run(self, mysql_db,
                                               vectorized):
        sim = ClusterSimulator(mysql_db, uniform_fleet(3),
                               RoundRobinRouter())
        m = sim.run([], vectorized=vectorized)
        assert m.served == 0
        assert m.horizon_s == 0.0
        assert m.wall_joules == 0.0
        # The fleet is awake over a zero-length horizon, so peak power
        # is the idle baseline; it must agree across all three modes.
        baseline = ClusterSimulator(
            mysql_db, uniform_fleet(3), RoundRobinRouter()
        ).run([], vectorized=False).peak_power_w
        assert m.peak_power_w == baseline
        assert len(m.nodes) == 3
        assert all(n.queries == 0 for n in m.nodes)
        assert np.isnan(m.p95_response_s) or m.p95_response_s == 0.0
        windows = m.window_report(30.0)
        assert len(windows) == 1
        assert windows[0].arrivals == 0

    def test_empty_stream_summary_renders(self, mysql_db):
        sim = ClusterSimulator(mysql_db, uniform_fleet(2),
                               LeastLoadedRouter())
        doc = sim.run([]).summary()
        assert doc["served"] == 0
        assert doc["wall_joules"] == 0.0
        assert doc["avg_power_w"] == 0.0
