"""Observability layer: span tracing, metrics, energy attribution.

Covers the ISSUE-7 acceptance points: tracing off is bitwise identity
(the instrumented simulator with the null tracer produces the same
summary, energies included, as one never handed a tracer); per-phase
joule attribution reconciles with the measurement's independently
modeled total to <= 1e-9; every arrival gets exactly one terminal span
(served, shed, or dead-lettered) under the canonical fault plan; run
ids are deterministic functions of the full configuration; both trace
export formats round-trip through the loader and schema validator; and
streaming metrics sample on simulated-time window boundaries with
counters that agree with the fault report.
"""

import json

import pytest

from repro.cli import main
from repro.cluster import (
    ClusterSimulator,
    DynamicConsolidateRouter,
    FaultPlan,
    LeastLoadedRouter,
    MasterQueue,
    RetryPolicy,
    RoundRobinRouter,
    uniform_fleet,
)
from repro.cluster.measure import ClusterMeasurement, QueryResponse
from repro.core.qed.policy import BatchPolicy
from repro.measurement.perf import fault_plan
from repro.obs import (
    RECONCILE_TOLERANCE,
    TERMINAL_PHASES,
    MetricsRegistry,
    SpanTracer,
    config_fingerprint,
    energy_attribution,
    load_trace,
    render_attribution,
    run_id_for,
    span_stats,
    validate_trace,
    write_metrics,
    write_trace,
)
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.selection import selection_workload


def _stream(count=60, distinct=10, mean_s=0.05, seed=1):
    queries = selection_workload(distinct).queries
    return poisson_arrivals(
        [queries[i % distinct] for i in range(count)], mean_s, seed=seed
    )


def _dynamic():
    return DynamicConsolidateRouter(
        max_backlog_s=1.5, target_utilization=0.5
    )


def _faulted_sim(db, tracer=None, metrics=None):
    """The canonical fault scenario (mirrors the perf ablation)."""
    return ClusterSimulator(
        db, uniform_fleet(4, wake_latency_s=0.5), _dynamic(),
        faults=fault_plan(),
        retry=RetryPolicy(max_attempts=4, backoff_s=0.05),
        tracer=tracer, metrics=metrics,
    )


class TestTracingIdentity:
    def test_tracing_off_is_bitwise_identity(self, mysql_db):
        stream = _stream()
        base = ClusterSimulator(
            mysql_db, uniform_fleet(4), _dynamic()
        ).run(stream)
        traced = ClusterSimulator(
            mysql_db, uniform_fleet(4), _dynamic(), tracer=SpanTracer()
        ).run(stream)
        assert base.summary() == traced.summary()
        for a, b in zip(base.nodes, traced.nodes):
            assert a.wall_joules == b.wall_joules

    def test_tracing_identity_under_faults(self, mysql_db):
        stream = _stream(count=80, mean_s=0.05, seed=3)
        base = _faulted_sim(mysql_db).run(stream)
        traced = _faulted_sim(mysql_db, tracer=SpanTracer()).run(stream)
        assert base.summary() == traced.summary()

    def test_metrics_do_not_perturb_energies(self, mysql_db):
        stream = _stream()
        base = ClusterSimulator(
            mysql_db, uniform_fleet(4), _dynamic()
        ).run(stream)
        metered = ClusterSimulator(
            mysql_db, uniform_fleet(4), _dynamic(),
            metrics=MetricsRegistry(window_s=0.5),
        ).run(stream)
        assert base.summary() == metered.summary()


class TestEnergyAttribution:
    def test_reconciles_to_modeled_total(self, mysql_db):
        m = ClusterSimulator(
            mysql_db, uniform_fleet(4), _dynamic()
        ).run(_stream())
        att = energy_attribution(m)
        assert att["reconciliation_rel"] <= RECONCILE_TOLERANCE
        phase_sum = sum(att["phase_totals"].values())
        assert phase_sum == pytest.approx(
            m.modeled_wall_joules, rel=1e-12
        )

    def test_reconciles_under_faults(self, mysql_db):
        m = _faulted_sim(mysql_db).run(
            _stream(count=80, mean_s=0.05, seed=3)
        )
        att = energy_attribution(m)
        assert att["reconciliation_rel"] <= RECONCILE_TOLERANCE
        # The crash write-off is a memo, not a phase: the timeline
        # bills crashed-away time at idle watts, so the memo must not
        # enter (or break) the reconciliation.
        assert att["wasted_by_crash_j"] == m.faults.wasted_joules
        assert att["wasted_by_crash_j"] > 0.0

    def test_render_mentions_reconciliation(self, mysql_db):
        m = ClusterSimulator(
            mysql_db, uniform_fleet(2), RoundRobinRouter()
        ).run(_stream(count=20))
        text = render_attribution(energy_attribution(m))
        assert "reconciliation" in text
        for node in m.nodes:
            assert node.name in text


class TestTerminalInvariant:
    def test_every_arrival_has_exactly_one_terminal(self, mysql_db):
        stream = _stream(count=80, mean_s=0.05, seed=3)
        tracer = SpanTracer()
        m = _faulted_sim(mysql_db, tracer=tracer).run(stream)
        terminals = tracer.terminal_spans()
        assert all(t.name in TERMINAL_PHASES for t in terminals)
        outcomes = sorted(
            (t.args["sql"], t.args["arrival_s"]) for t in terminals
        )
        assert outcomes == sorted((a.sql, a.time_s) for a in stream)
        by_name = {}
        for t in terminals:
            by_name[t.name] = by_name.get(t.name, 0) + 1
        assert by_name.get("served", 0) == m.served
        # Under an active plan every shed query is a dead-letter.
        assert by_name.get("dead-letter", 0) == len(m.shed)
        assert m.faults.dead_lettered == len(m.shed)

    def test_fault_free_run_serves_every_terminal(self, mysql_db):
        stream = _stream(count=40)
        tracer = SpanTracer()
        m = ClusterSimulator(
            mysql_db, uniform_fleet(3), _dynamic(), tracer=tracer
        ).run(stream)
        terminals = tracer.terminal_spans()
        assert len(terminals) == len(stream) == m.served
        assert {t.name for t in terminals} == {"served"}

    def test_terminal_rejects_unknown_phase(self):
        tracer = SpanTracer()
        tracer.begin_run({})
        with pytest.raises(ValueError, match="terminal"):
            tracer.terminal("vanished", "SELECT 1", 0.0, 1.0)


class TestRunId:
    def test_same_config_same_id(self, mysql_db):
        stream = _stream()
        a = ClusterSimulator(
            mysql_db, uniform_fleet(4), _dynamic()
        ).run(stream)
        b = ClusterSimulator(
            mysql_db, uniform_fleet(4), _dynamic()
        ).run(stream)
        assert a.run_id is not None
        assert a.run_id == b.run_id
        assert a.fingerprint == b.fingerprint

    def test_id_tracks_configuration(self, mysql_db):
        stream = _stream()
        base = ClusterSimulator(
            mysql_db, uniform_fleet(4), _dynamic()
        ).run(stream)
        other_router = ClusterSimulator(
            mysql_db, uniform_fleet(4), RoundRobinRouter()
        ).run(stream)
        other_stream = ClusterSimulator(
            mysql_db, uniform_fleet(4), _dynamic()
        ).run(_stream(seed=2))
        other_fleet = ClusterSimulator(
            mysql_db, uniform_fleet(5), _dynamic()
        ).run(stream)
        ids = {base.run_id, other_router.run_id,
               other_stream.run_id, other_fleet.run_id}
        assert len(ids) == 4

    def test_empty_plan_matches_no_plan(self, mysql_db):
        stream = _stream()
        none = ClusterSimulator(
            mysql_db, uniform_fleet(3), RoundRobinRouter()
        ).run(stream)
        empty = ClusterSimulator(
            mysql_db, uniform_fleet(3), RoundRobinRouter(),
            faults=FaultPlan(),
        ).run(stream)
        assert none.run_id == empty.run_id
        assert none.summary() == empty.summary()

    def test_fingerprint_hash_is_stable(self):
        fp = config_fingerprint(
            uniform_fleet(2), RoundRobinRouter(),
            arrivals=_stream(count=10),
        )
        assert run_id_for(fp) == run_id_for(fp)
        fp2 = config_fingerprint(
            uniform_fleet(2), RoundRobinRouter(),
            arrivals=_stream(count=11),
        )
        assert run_id_for(fp) != run_id_for(fp2)

    def test_summary_carries_run_id(self, mysql_db):
        m = ClusterSimulator(
            mysql_db, uniform_fleet(2), RoundRobinRouter()
        ).run(_stream(count=20))
        assert m.summary()["run_id"] == m.run_id


class TestExporters:
    def _traced_run(self, db):
        tracer = SpanTracer()
        m = _faulted_sim(db, tracer=tracer).run(
            _stream(count=80, mean_s=0.05, seed=3)
        )
        return tracer, m

    def test_jsonl_round_trip(self, mysql_db, tmp_path):
        tracer, m = self._traced_run(mysql_db)
        path = str(tmp_path / "trace.jsonl")
        meta = write_trace(path, tracer, measurement=m)
        loaded_meta, spans = load_trace(path)
        assert validate_trace(loaded_meta, spans) == []
        assert loaded_meta["run_id"] == m.run_id == meta["run_id"]
        assert len(spans) == len(tracer.spans)
        assert loaded_meta["attribution"]["reconciliation_rel"] \
            <= RECONCILE_TOLERANCE

    def test_chrome_round_trip(self, mysql_db, tmp_path):
        tracer, m = self._traced_run(mysql_db)
        path = str(tmp_path / "trace.json")
        write_trace(path, tracer, measurement=m)
        with open(path) as handle:
            doc = json.load(handle)
        events = doc["traceEvents"]
        assert any(e["ph"] == "X" for e in events)
        assert any(e["ph"] == "i" for e in events)
        # One named thread per track, master first (tid 0).
        names = {
            e["tid"]: e["args"]["name"] for e in events
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        assert names[0] == "master"
        loaded_meta, spans = load_trace(path)
        assert validate_trace(loaded_meta, spans) == []
        assert len(spans) == len(tracer.spans)

    def test_formats_agree(self, mysql_db, tmp_path):
        tracer, m = self._traced_run(mysql_db)
        write_trace(str(tmp_path / "t.jsonl"), tracer, measurement=m)
        write_trace(str(tmp_path / "t.json"), tracer, measurement=m)
        _, a = load_trace(str(tmp_path / "t.jsonl"))
        _, b = load_trace(str(tmp_path / "t.json"))
        # Chrome stores timestamps in microseconds; round away the
        # unit-conversion float noise before comparing.
        key = lambda s: (s["track"], round(s["start_s"], 6), s["name"])  # noqa: E731
        assert sorted(map(key, a)) == sorted(map(key, b))
        assert span_stats(a).keys() == span_stats(b).keys()

    def test_validator_flags_broken_reconciliation(
        self, mysql_db, tmp_path
    ):
        tracer, m = self._traced_run(mysql_db)
        path = str(tmp_path / "trace.jsonl")
        write_trace(path, tracer, measurement=m)
        meta, spans = load_trace(path)
        meta["attribution"]["reconciliation_rel"] = 1.0
        errors = validate_trace(meta, spans)
        assert any("reconcile" in e for e in errors)

    def test_validator_flags_missing_terminal_args(self):
        meta = {"format": "repro-obs-trace", "run_id": "x",
                "fingerprint": {}, "horizon_s": 1.0}
        spans = [{"name": "served", "track": "master",
                  "start_s": 0.0, "end_s": 0.0, "args": {}}]
        errors = validate_trace(meta, spans)
        assert any("terminal" in e for e in errors)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"nothing": true}')
        with pytest.raises(ValueError):
            load_trace(str(path))


class TestMetrics:
    def test_samples_sit_on_window_boundaries(self, mysql_db):
        registry = MetricsRegistry(window_s=0.5)
        m = ClusterSimulator(
            mysql_db, uniform_fleet(3), _dynamic(), metrics=registry
        ).run(_stream())
        times = [s["t_s"] for s in registry.samples]
        assert times
        assert times[0] == 0.0
        assert times == sorted(times)
        for t in times:
            assert (t / 0.5) == pytest.approx(round(t / 0.5), abs=1e-9)
        assert times[-1] <= m.horizon_s + 1e-9
        assert m.horizon_s - times[-1] < 0.5 + 1e-9

    def test_counters_match_fault_report(self, mysql_db):
        registry = MetricsRegistry(window_s=0.5)
        stream = _stream(count=80, mean_s=0.05, seed=3)
        m = _faulted_sim(mysql_db, metrics=registry).run(stream)
        counters = {c.name: c.value for c in registry.counters()}
        report = m.faults
        assert counters["arrivals"] == len(stream)
        assert counters["crashes"] == report.crashes
        assert counters["retries"] == report.retries
        assert counters.get("dead_lettered", 0.0) == report.dead_lettered

    def test_qed_batches_counted(self, mysql_db):
        registry = MetricsRegistry(window_s=0.5)
        m = ClusterSimulator(
            mysql_db, uniform_fleet(3), LeastLoadedRouter(),
            master_queue=MasterQueue(BatchPolicy(4, max_wait_s=0.2)),
            metrics=registry,
        ).run(_stream())
        counters = {c.name: c.value for c in registry.counters()}
        assert counters["qed_batches"] == m.qed.batches
        assert registry.histogram("batch_size").count == m.qed.batches

    def test_export_schema(self, mysql_db, tmp_path):
        registry = MetricsRegistry(window_s=0.5)
        ClusterSimulator(
            mysql_db, uniform_fleet(2), RoundRobinRouter(),
            metrics=registry,
        ).run(_stream(count=20))
        path = tmp_path / "metrics.json"
        doc = write_metrics(str(path), registry)
        assert doc == json.loads(path.read_text())
        assert doc["format"] == "repro-obs-metrics"
        assert doc["window_s"] == 0.5
        assert doc["counters"]["arrivals"] == 20.0
        sample = doc["samples"][0]
        assert "t_s" in sample and "awake_nodes" in sample

    @pytest.mark.parametrize("window_s", [0.0, -1.0, -0.5])
    def test_rejects_bad_window(self, window_s):
        with pytest.raises(ValueError, match="window_s"):
            MetricsRegistry(window_s=window_s)


class TestWindowReportRegressions:
    def test_zero_horizon_emits_one_well_formed_window(self):
        m = ClusterMeasurement(horizon_s=0.0, nodes=[], responses=[])
        windows = m.window_report(30.0)
        assert len(windows) == 1
        w = windows[0]
        assert (w.start_s, w.end_s) == (0.0, 0.0)
        assert w.arrivals == 0 and w.served == 0
        assert w.modeled_joules == 0.0

    def test_float_noise_horizon_keeps_window_count(self):
        # 3 x 0.1 accumulates to 0.30000000000000004; the report must
        # tile it as 3 windows, not 3 plus a zero-width tail.
        horizon = 0.1 + 0.1 + 0.1
        m = ClusterMeasurement(horizon_s=horizon, nodes=[], responses=[])
        windows = m.window_report(0.1)
        assert len(windows) == 3
        assert windows[-1].end_s == horizon
        assert all(w.span_s > 0 for w in windows)

    def test_final_completion_counted_exactly_once(self):
        horizon = 0.30000000000000004
        m = ClusterMeasurement(
            horizon_s=horizon, nodes=[],
            responses=[QueryResponse("q", "n", 0.0, 0.0, horizon)],
        )
        windows = m.window_report(0.1)
        assert sum(w.served for w in windows) == 1
        assert windows[-1].served == 1

    def test_partial_final_window_closes_at_horizon(self, mysql_db):
        m = ClusterSimulator(
            mysql_db, uniform_fleet(2), RoundRobinRouter()
        ).run(_stream(count=20))
        window_s = m.horizon_s / 2.5  # guarantees a partial tail
        windows = m.window_report(window_s)
        assert windows[-1].end_s == m.horizon_s
        assert windows[-1].span_s > 0
        assert sum(w.served for w in windows) == m.served

    def test_windows_tile_modeled_energy(self, mysql_db):
        m = ClusterSimulator(
            mysql_db, uniform_fleet(3), _dynamic()
        ).run(_stream())
        windows = m.window_report(0.7)
        total = sum(w.modeled_joules for w in windows)
        assert total == pytest.approx(m.modeled_wall_joules, rel=1e-9)


class TestCli:
    def test_traced_run_and_report(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.json")
        metrics = str(tmp_path / "metrics.json")
        rc = main([
            "cluster", "--sf", "0.002", "--nodes", "2",
            "--arrivals", "20", "--distinct", "4",
            "--policy", "spread",
            "--trace", trace, "--metrics", metrics,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "run id" in out
        assert "energy reconcile" in out
        rc = main(["obs", "report", trace])
        assert rc == 0
        assert "trace valid" in capsys.readouterr().out
        doc = json.loads((tmp_path / "metrics.json").read_text())
        assert doc["counters"]["arrivals"] == 20.0

    def test_report_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text("not a trace")
        assert main(["obs", "report", str(path)]) == 2
        assert "error" in capsys.readouterr().err
