"""Cluster conservation invariants (ISSUE 2 satellite).

* Batched playback energy equals the sum of sequential per-node
  ``run_compiled`` energy to 1e-9 relative.
* Consolidate-with-sleep never starts work on a sleeping node before
  its wake latency elapses.
* The power-cap policy never exceeds the cap in steady state.
"""

import pytest

from repro.cluster import (
    ClusterSimulator,
    ConsolidateRouter,
    PowerCapRouter,
    RoundRobinRouter,
    uniform_fleet,
)
from repro.cluster.playback import play_batched
from repro.hardware.cpu import PvcSetting, VoltageDowngrade
from repro.cluster.node import NodeSpec
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.selection import selection_workload

REL = 1e-9


def _stream(count=120, distinct=12, mean_s=0.05, seed=3):
    queries = selection_workload(distinct).queries
    return poisson_arrivals(
        [queries[i % distinct] for i in range(count)], mean_s, seed=seed
    )


@pytest.fixture()
def heterogeneous_specs():
    """Two playback groups: stock nodes and underclocked nodes."""
    slow = PvcSetting(10, VoltageDowngrade.MEDIUM)
    specs = uniform_fleet(2) + [
        NodeSpec("eco00", setting=slow),
        NodeSpec("eco01", setting=slow),
    ]
    return specs


class TestEnergyConservation:
    def test_batched_equals_sequential_per_node_playback(
        self, mysql_db, heterogeneous_specs
    ):
        sim = ClusterSimulator(
            mysql_db, heterogeneous_specs, RoundRobinRouter()
        )
        # The per-piece comparison below reads the loop scheduler's
        # piece maps; the vectorized path never materializes them.
        schedule = sim.schedule(_stream(), vectorized=False)
        batched = play_batched(
            schedule.nodes, schedule.pieces_by_node,
            schedule.workload_class,
        )
        for node in schedule.nodes:
            pieces = schedule.pieces_by_node[node.spec.name]
            sequential = None
            for piece in pieces:
                m = node.sut.run_compiled(piece, schedule.workload_class)
                sequential = m if sequential is None else sequential + m
            stacked = batched[node.spec.name]
            assert stacked.wall_joules == pytest.approx(
                sequential.wall_joules, rel=REL
            )
            assert stacked.cpu_joules == pytest.approx(
                sequential.cpu_joules, rel=REL
            )
            assert stacked.duration_s == pytest.approx(
                sequential.duration_s, rel=REL
            )

    def test_cluster_totals_identical_across_playback_modes(
        self, mysql_db, heterogeneous_specs
    ):
        sim = ClusterSimulator(
            mysql_db, heterogeneous_specs, RoundRobinRouter()
        )
        stream = _stream()
        batched = sim.run(stream, mode="batched")
        loop = sim.run(stream, mode="loop")
        assert batched.wall_joules == pytest.approx(
            loop.wall_joules, rel=REL
        )
        assert batched.cpu_joules == pytest.approx(
            loop.cpu_joules, rel=REL
        )
        assert batched.edp == pytest.approx(loop.edp, rel=REL)

    def test_playback_covers_the_whole_horizon(self, mysql_db):
        """Awake time plus sleep time accounts for every node-second."""
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(3, wake_latency_s=2.0),
            ConsolidateRouter(max_backlog_s=0.2),
        )
        m = sim.run(_stream())
        for usage in m.nodes:
            covered = usage.playback.duration_s + usage.sleep_s
            assert covered == pytest.approx(m.horizon_s, rel=1e-6)


class TestConsolidateSleepWake:
    def test_never_serves_before_wake_latency(self, mysql_db):
        wake_latency = 0.5
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(4, wake_latency_s=wake_latency),
            ConsolidateRouter(max_backlog_s=0.05),
        )
        schedule = sim.schedule(_stream(mean_s=0.01))
        woken = [
            n for n in schedule.nodes
            if not n.started_awake and n.wake_called_s is not None
        ]
        assert woken, "the load should wake at least one node"
        for node in woken:
            ready = node.wake_called_s + wake_latency
            assert node.wake_ready_s == pytest.approx(ready)
            for work in node.scheduled:
                assert work.start_s >= ready - 1e-12

    def test_sleeping_nodes_never_scheduled(self, mysql_db):
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(4, wake_latency_s=1.0),
            ConsolidateRouter(max_backlog_s=10.0),  # node 0 absorbs all
        )
        m = sim.run(_stream())
        assert m.awake_nodes == 1
        sleepers = [n for n in m.nodes if n.playback.duration_s == 0]
        assert len(sleepers) == 3
        for usage in sleepers:
            assert usage.queries == 0
            assert usage.sleep_s == pytest.approx(m.horizon_s)
            assert usage.wall_joules == pytest.approx(
                3.5 * m.horizon_s
            )

    def test_short_burst_does_not_stampede_the_fleet_awake(
        self, mysql_db
    ):
        """Waking costs ~30 s here; a sub-second burst must ride out on
        the awake node (whose backlog clears far sooner), not wake
        sleepers that would answer *later* at idle-power cost."""
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(8, wake_latency_s=30.0),
            ConsolidateRouter(max_backlog_s=0.2),
        )
        burst = _stream(count=40, mean_s=0.005)
        m = sim.run(burst)
        assert m.awake_nodes == 1
        assert m.horizon_s < 5.0  # nowhere near a 30 s wake
        assert m.p99_response_s < 5.0

    def test_wakes_when_backlog_beats_wake_latency(self, mysql_db):
        """Sustained overload where waking genuinely helps must still
        wake nodes -- the burst guard is a comparison, not a ban."""
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(4, wake_latency_s=0.3),
            ConsolidateRouter(max_backlog_s=0.1),
        )
        m = sim.run(_stream(count=200, mean_s=0.005))
        assert m.awake_nodes > 1

    def test_consolidate_saves_energy_vs_spread(self, mysql_db):
        stream = _stream()
        spread = ClusterSimulator(
            mysql_db, uniform_fleet(4), RoundRobinRouter()
        ).run(stream)
        packed = ClusterSimulator(
            mysql_db, uniform_fleet(4, wake_latency_s=1.0),
            ConsolidateRouter(max_backlog_s=1.0),
        ).run(stream)
        assert packed.wall_joules < spread.wall_joules
        assert packed.awake_nodes < len(packed.nodes)


class TestPowerCap:
    def test_steady_state_never_exceeds_cap(self, mysql_db):
        cap = 445.0  # tight: barely one busy node of headroom
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(4), PowerCapRouter(cap_w=cap)
        )
        m = sim.run(_stream(mean_s=0.005))  # heavy load, forced delays
        assert m.served == 120
        assert m.cap_w == cap
        assert m.peak_power_w <= cap + 1e-9
        assert m.power_cap_overshoot_w == 0.0

    def test_uncapped_peak_exceeds_the_tight_cap(self, mysql_db):
        """The cap is binding: without it the same load peaks higher."""
        free = ClusterSimulator(
            mysql_db, uniform_fleet(4), RoundRobinRouter()
        ).run(_stream(mean_s=0.005))
        assert free.peak_power_w > 445.0

    def test_capped_run_is_slower_but_bounded(self, mysql_db):
        stream = _stream(mean_s=0.005)
        free = ClusterSimulator(
            mysql_db, uniform_fleet(4), RoundRobinRouter()
        ).run(stream)
        capped = ClusterSimulator(
            mysql_db, uniform_fleet(4), PowerCapRouter(cap_w=445.0)
        ).run(stream)
        assert capped.p95_response_s >= free.p95_response_s
        assert capped.peak_power_w <= free.peak_power_w

    def test_max_delay_sheds_instead_of_waiting(self, mysql_db):
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(4),
            PowerCapRouter(cap_w=445.0, max_delay_s=0.0),
        )
        m = sim.run(_stream(mean_s=0.005))
        assert len(m.shed) > 0
        assert m.served + len(m.shed) == 120
        assert m.peak_power_w <= 445.0 + 1e-9
        # Shed queries count as SLA misses.
        assert m.sla_violations(1e9) == len(m.shed)

    def test_infeasible_cap_rejected(self, mysql_db):
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(4), PowerCapRouter(cap_w=100.0)
        )
        with pytest.raises(ValueError):
            sim.run(_stream(count=5))
