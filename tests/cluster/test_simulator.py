"""Cluster simulator behavior: routing, QED batching, accounting, CLI."""

import pytest

from repro.cli import main
from repro.cluster import (
    ClusterSimulator,
    LeastLoadedRouter,
    RoundRobinRouter,
    uniform_fleet,
)
from repro.cluster.node import NodeSpec, uniform_fleet as _uf
from repro.core.qed.policy import BatchPolicy
from repro.workloads.arrivals import (
    merge_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.workloads.selection import selection_workload


def _stream(count=60, distinct=10, mean_s=0.05, seed=1):
    queries = selection_workload(distinct).queries
    return poisson_arrivals(
        [queries[i % distinct] for i in range(count)], mean_s, seed=seed
    )


class TestScheduling:
    def test_round_robin_spreads_evenly(self, mysql_db):
        sim = ClusterSimulator(mysql_db, uniform_fleet(4),
                               RoundRobinRouter())
        m = sim.run(_stream(count=80))
        assert [n.queries for n in m.nodes] == [20, 20, 20, 20]

    def test_every_arrival_is_answered_once(self, mysql_db):
        stream = _stream(count=80)
        sim = ClusterSimulator(mysql_db, uniform_fleet(3),
                               LeastLoadedRouter())
        m = sim.run(stream)
        assert m.served == len(stream)
        answered = sorted(
            (r.sql, r.arrival_s) for r in m.iter_responses()
        )
        expected = sorted((a.sql, a.time_s) for a in stream)
        assert answered == expected

    def test_queries_never_start_before_arrival(self, mysql_db):
        sim = ClusterSimulator(mysql_db, uniform_fleet(2),
                               LeastLoadedRouter())
        m = sim.run(_stream(mean_s=0.005))
        assert m.served > 0
        for r in m.iter_responses():
            assert r.start_s >= r.arrival_s - 1e-12
            assert r.completion_s > r.start_s
            assert r.response_s > 0

    def test_nodes_serve_serially(self, mysql_db):
        """Busy windows on one node never overlap."""
        sim = ClusterSimulator(mysql_db, uniform_fleet(2),
                               RoundRobinRouter())
        schedule = sim.schedule(_stream(mean_s=0.002))
        for node in schedule.nodes:
            for a, b in zip(node.scheduled, node.scheduled[1:]):
                assert b.start_s >= a.end_s - 1e-12

    def test_distinct_statements_execute_once(self, mysql_db):
        before = mysql_db.executions
        sim = ClusterSimulator(mysql_db, uniform_fleet(4),
                               RoundRobinRouter())
        sim.run(_stream(count=60, distinct=10))
        assert mysql_db.executions - before == 10

    def test_underclocked_nodes_run_slower(self, mysql_db):
        from repro.hardware.cpu import PvcSetting, VoltageDowngrade

        stream = uniform_arrivals(
            selection_workload(4).queries * 5, 0.01
        )
        stock = ClusterSimulator(
            mysql_db, uniform_fleet(1), RoundRobinRouter()
        ).run(stream)
        eco = ClusterSimulator(
            mysql_db,
            [NodeSpec("eco", setting=PvcSetting(
                15, VoltageDowngrade.MEDIUM
            ))],
            RoundRobinRouter(),
        ).run(stream)
        assert eco.p95_response_s > stock.p95_response_s
        assert eco.cpu_joules < stock.cpu_joules

    def test_multi_tenant_merged_stream(self, mysql_db):
        a = poisson_arrivals(selection_workload(5).queries * 4,
                             0.05, seed=1)
        b = poisson_arrivals(
            selection_workload(5, start=11).queries * 4, 0.05, seed=2
        )
        sim = ClusterSimulator(mysql_db, uniform_fleet(2),
                               LeastLoadedRouter())
        m = sim.run(merge_arrivals(a, b))
        assert m.served == len(a) + len(b)

    def test_empty_arrivals_produce_a_zero_run(self, mysql_db):
        """NHPP generators legitimately emit empty streams in low-rate
        windows; they must measure as zero, not crash."""
        sim = ClusterSimulator(mysql_db, uniform_fleet(2),
                               RoundRobinRouter())
        m = sim.run([])
        assert m.served == 0
        assert m.wall_joules == 0.0
        assert m.horizon_s == 0.0

    def test_duplicate_node_names_rejected(self, mysql_db):
        with pytest.raises(ValueError):
            ClusterSimulator(
                mysql_db,
                [NodeSpec("n"), NodeSpec("n")],
                RoundRobinRouter(),
            )


class TestQedNodes:
    def test_batches_merge_and_answer_together(self, mysql_db):
        policy = BatchPolicy(threshold=5)
        sim = ClusterSimulator(
            mysql_db,
            uniform_fleet(1, queue_policy=policy),
            RoundRobinRouter(),
        )
        stream = _stream(count=20, distinct=10)
        m = sim.run(stream)
        assert m.served == 20
        node = m.nodes[0]
        # 20 arrivals / threshold 5 -> 4 merged windows.
        completions = {r.completion_s for r in m.responses}
        assert len(completions) == 4
        assert node.queries == 20

    def test_trailing_partial_batch_flushes(self, mysql_db):
        policy = BatchPolicy(threshold=8)
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(1, queue_policy=policy),
            RoundRobinRouter(),
        )
        m = sim.run(_stream(count=20, distinct=10))
        assert m.served == 20  # 8 + 8 + flushed 4

    def test_timeout_policy_dispatches_between_arrivals(self, mysql_db):
        policy = BatchPolicy(threshold=50, max_wait_s=0.5)
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(1, queue_policy=policy),
            RoundRobinRouter(),
        )
        m = sim.run(_stream(count=30, mean_s=0.2))
        # The threshold is never reached; only the timeout (and the
        # final flush) can dispatch, in several windows.
        assert m.served == 30
        assert len({r.completion_s for r in m.responses}) > 1

    def test_timeout_batches_dispatch_at_expiry_not_next_arrival(
        self, mysql_db
    ):
        """Sparse arrivals: a timed-out batch fires at the oldest
        query's expiry, not when the next arrival happens to tick the
        queue -- response times must not absorb the inter-arrival gap."""
        max_wait = 0.1
        policy = BatchPolicy(threshold=100, max_wait_s=max_wait)
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(1, queue_policy=policy),
            RoundRobinRouter(),
        )
        # Arrivals 5 s apart: each query times out alone long before
        # the next one shows up (the last drains via the final flush,
        # also at its own expiry).
        stream = uniform_arrivals(selection_workload(4).queries, 5.0)
        m = sim.run(stream)
        assert m.served == 4
        for r in m.responses:
            assert r.start_s == pytest.approx(
                r.arrival_s + max_wait
            )
            assert r.response_s < 1.0  # nowhere near the 5 s gap

    def test_mixed_template_batch_serves_as_singletons(self, mysql_db):
        """Regression: a QED-queued node receiving mixed templates used
        to raise NotMergeableError out of schedule(); the batch must
        degrade to back-to-back singleton executions instead."""
        queries = selection_workload(4).queries + [
            f"SELECT l_orderkey, l_extendedprice FROM lineitem "
            f"WHERE l_quantity = {q}" for q in (11, 12)
        ]
        stream = poisson_arrivals(
            [queries[i % len(queries)] for i in range(30)], 0.02, seed=4
        )
        sim = ClusterSimulator(
            mysql_db,
            uniform_fleet(1, queue_policy=BatchPolicy(threshold=6)),
            RoundRobinRouter(),
        )
        m = sim.run(stream)  # must not raise
        assert m.served == 30
        assert m.qed is not None and m.qed.mode == "node"
        assert m.qed.fallback_batches > 0
        answered = sorted((r.sql, r.arrival_s) for r in m.responses)
        assert answered == sorted((a.sql, a.time_s) for a in stream)

    def test_singleton_batches_reuse_cached_traces(self, mysql_db):
        """Regression: a size-1 QED batch used to re-render "merged"
        SQL and execute it afresh; it must replay the per-query trace
        already in the schedule table."""
        stream = _stream(count=12, distinct=6, mean_s=5.0)
        sim = ClusterSimulator(
            mysql_db,
            uniform_fleet(
                1, queue_policy=BatchPolicy(threshold=50, max_wait_s=0.1)
            ),
            RoundRobinRouter(),
        )
        before = mysql_db.executions
        schedule = sim.schedule(stream)  # every batch times out alone
        assert mysql_db.executions - before == 6
        assert set(schedule.table) == {a.sql for a in stream}
        assert schedule.qed.singleton_windows == 12
        assert schedule.qed.merged_windows == 0

    def test_qed_node_conservation(self, mysql_db):
        policy = BatchPolicy(threshold=5)
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(2, queue_policy=policy),
            RoundRobinRouter(),
        )
        stream = _stream(count=40, distinct=10)
        batched = sim.run(stream, mode="batched")
        loop = sim.run(stream, mode="loop")
        assert batched.wall_joules == pytest.approx(
            loop.wall_joules, rel=1e-9
        )


class TestScheduleSnapshots:
    def test_earlier_schedule_survives_a_later_one(self, mysql_db):
        """ClusterSchedule must not alias live node state (a second
        schedule() resets the nodes)."""
        sim = ClusterSimulator(mysql_db, uniform_fleet(2),
                               RoundRobinRouter())
        first_stream = _stream(count=40, seed=1)
        s1 = sim.schedule(first_stream)
        reference = sim.playback(s1)
        sim.schedule(_stream(count=10, seed=2))  # resets live nodes
        replayed = sim.playback(s1)
        assert replayed.served == reference.served == 40
        assert replayed.wall_joules == reference.wall_joules
        assert [n.utilization for n in replayed.nodes] == [
            n.utilization for n in reference.nodes
        ]
        assert [r.completion_s for r in replayed.responses] == [
            r.completion_s for r in reference.responses
        ]


class TestPowerCapQueueInteraction:
    def test_powercap_rejects_qed_queues(self, mysql_db):
        """A per-node queue re-times work after routing, which would
        silently void the cap guarantee -- refuse the combination."""
        from repro.cluster import PowerCapRouter

        sim = ClusterSimulator(
            mysql_db,
            uniform_fleet(2, queue_policy=BatchPolicy(threshold=5)),
            PowerCapRouter(cap_w=460.0),
        )
        with pytest.raises(ValueError, match="QED queues"):
            sim.run(_stream(count=10))


class TestClusterCli:
    def test_cluster_command_smoke(self, capsys):
        status = main([
            "cluster", "--sf", "0.002", "--nodes", "2",
            "--arrivals", "40", "--distinct", "8",
            "--policy", "consolidate", "--sla", "0.5",
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "wall energy" in out
        assert "node00" in out and "node01" in out

    def test_cluster_powercap_command(self, capsys):
        status = main([
            "cluster", "--sf", "0.002", "--nodes", "2",
            "--arrivals", "30", "--distinct", "5",
            "--policy", "powercap", "--cap-w", "400",
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "power cap" in out
        assert "overshoot 0.00" in out

    def test_cluster_trace_cache_flag(self, capsys, tmp_path):
        argv = [
            "cluster", "--sf", "0.002", "--nodes", "2",
            "--arrivals", "20", "--distinct", "5",
            "--trace-cache", str(tmp_path),
        ]
        assert main(argv) == 0
        assert list(tmp_path.glob("*.npz"))  # traces persisted
        capsys.readouterr()
        assert main(argv) == 0  # second run loads them


def test_uniform_fleet_names_and_validation():
    specs = _uf(3, prefix="srv")
    assert [s.name for s in specs] == ["srv00", "srv01", "srv02"]
    with pytest.raises(ValueError):
        _uf(0)
    with pytest.raises(ValueError):
        NodeSpec("x", wake_latency_s=-1.0)
    with pytest.raises(ValueError):
        NodeSpec("x", capacity=0.0)
    with pytest.raises(ValueError):
        NodeSpec("x", capacity=-0.5)
