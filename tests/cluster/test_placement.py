"""Data placement: partitioned tables, replica routing, recovery.

Covers the ISSUE-9 acceptance points: the no-placement identity (a run
without a map -- or with a vacuous fully-replicated one -- is the seed
run, summary-for-summary), shard-aware routing (statements reach only
nodes holding every shard their predicates touch, vectorized and loop
paths agreeing to <= 1e-9), the quorum constraint (consolidation never
sleeps the last awake replica of a shard), crash-triggered
re-replication (copy work billed on both endpoints, replica counts
restored), and graceful degradation when a shard loses its last live
replica (queries retry and dead-letter visibly, never vanish).
"""

import json

import pytest

from repro.cluster import (
    ClusterSimulator,
    ConsolidateRouter,
    DynamicConsolidateRouter,
    FaultPlan,
    FaultSpec,
    HashSplitRouter,
    LeastLoadedRouter,
    PlacementMap,
    RetryPolicy,
    RoundRobinRouter,
    TablePlacement,
    generate_placement,
    load_placement,
    uniform_fleet,
)
from repro.cluster.placement import (
    quorum_cover,
    replication_copy_trace,
    stable_hash,
)
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.selection import selection_workload

REL = 1e-9


def _stream(count=80, distinct=8, mean_s=0.05, seed=1):
    queries = selection_workload(distinct).queries
    return poisson_arrivals(
        [queries[i % distinct] for i in range(count)], mean_s, seed=seed
    )


def _names(n):
    return [s.name for s in uniform_fleet(n)]


def _chained(n=4, shards=4, replicas=2, quorum=1):
    return generate_placement(_names(n), shards=shards,
                              replicas=replicas, quorum=quorum)


def _summary_sans_run_id(m):
    return {k: v for k, v in m.summary().items() if k != "run_id"}


class TestTablePlacement:
    def test_generate_chained_declustering(self):
        pm = _chained(4, shards=4, replicas=2)
        tp = pm.for_table("lineitem")
        assert tp.replica_map == (
            ("node00", "node01"), ("node01", "node02"),
            ("node02", "node03"), ("node03", "node00"),
        )

    def test_generate_majority_quorum(self):
        pm = generate_placement(_names(4), shards=2, replicas=3,
                                quorum="majority")
        assert pm.for_table("lineitem").quorum == 2

    def test_generate_rejects_oversized_replication(self):
        with pytest.raises(ValueError, match="replicas"):
            generate_placement(_names(2), shards=2, replicas=3)

    def test_hash_shard_of_is_stable(self):
        tp = _chained().for_table("lineitem")
        assert tp.shard_of(5) == stable_hash(5) % tp.shards
        assert tp.shard_of(5) == tp.shard_of(5)

    def test_range_shard_of_uses_bounds(self):
        tp = TablePlacement(
            "lineitem", "l_quantity", shards=3, replicas=1,
            replica_map=(("a",), ("b",), ("c",)),
            kind="range", bounds=(5, 10),
        )
        assert tp.shard_of(3) == 0
        assert tp.shard_of(5) == 1
        assert tp.shard_of(12) == 2

    def test_range_bounds_validated(self):
        with pytest.raises(ValueError, match="ascending"):
            TablePlacement(
                "t", "c", shards=3, replicas=1,
                replica_map=(("a",), ("b",), ("c",)),
                kind="range", bounds=(10, 5),
            )

    def test_replica_map_shape_validated(self):
        with pytest.raises(ValueError, match="replica"):
            TablePlacement(
                "t", "c", shards=2, replicas=2,
                replica_map=(("a", "b"), ("a",)),
            )

    def test_quorum_bounds_validated(self):
        with pytest.raises(ValueError, match="quorum"):
            TablePlacement(
                "t", "c", shards=1, replicas=2,
                replica_map=(("a", "b"),), quorum=3,
            )

    def test_round_trip_and_load(self, tmp_path):
        pm = _chained(4, shards=4, replicas=2)
        again = PlacementMap.from_dict(pm.to_dict())
        assert again.to_dict() == pm.to_dict()
        path = tmp_path / "placement.json"
        path.write_text(json.dumps(pm.to_dict()))
        assert load_placement(path).to_dict() == pm.to_dict()

    def test_from_dict_rejects_unknown_keys(self):
        doc = _chained().to_dict()
        doc["tables"][0]["sharding"] = "extra"
        with pytest.raises(ValueError, match="unknown"):
            PlacementMap.from_dict(doc)


class TestRequiredShards:
    def test_equality_narrows_to_one_shard(self):
        pm = _chained()
        tp = pm.for_table("lineitem")
        req = pm.required_shards(
            "SELECT l_orderkey FROM lineitem WHERE l_quantity = 5"
        )
        assert req == frozenset({("lineitem", tp.shard_of(5))})

    def test_in_list_unions_shards(self):
        pm = _chained()
        tp = pm.for_table("lineitem")
        req = pm.required_shards(
            "SELECT * FROM lineitem WHERE l_quantity IN (1, 2, 3)"
        )
        assert req == frozenset(
            ("lineitem", tp.shard_of(v)) for v in (1, 2, 3)
        )

    def test_or_unions_and_intersects(self):
        pm = _chained()
        tp = pm.for_table("lineitem")
        either = pm.required_shards(
            "SELECT * FROM lineitem "
            "WHERE l_quantity = 1 OR l_quantity = 3"
        )
        assert either == frozenset(
            ("lineitem", tp.shard_of(v)) for v in (1, 3)
        )
        both = pm.required_shards(
            "SELECT * FROM lineitem "
            "WHERE l_quantity = 1 AND l_orderkey > 0"
        )
        assert both == frozenset({("lineitem", tp.shard_of(1))})

    def test_no_predicate_needs_every_shard(self):
        pm = _chained()
        req = pm.required_shards("SELECT count(*) FROM lineitem")
        assert req == frozenset(
            ("lineitem", s) for s in range(4)
        )

    def test_unplaced_table_is_unconstrained(self):
        assert _chained().required_shards(
            "SELECT * FROM orders"
        ) is None

    def test_unparseable_sql_degrades_to_all_shards(self):
        req = _chained().required_shards("NOT VALID SQL AT ALL")
        assert req == frozenset(
            ("lineitem", s) for s in range(4)
        )


class TestPlacementIdentity:
    """A vacuous (fully replicated) map routes exactly like no map."""

    @pytest.mark.parametrize("router_factory", [
        RoundRobinRouter,
        LeastLoadedRouter,
        HashSplitRouter,
        lambda: ConsolidateRouter(max_backlog_s=0.5),
        lambda: DynamicConsolidateRouter(max_backlog_s=0.5),
    ])
    def test_full_replication_is_identity(self, mysql_db,
                                          router_factory):
        stream = _stream()
        full = generate_placement(_names(4), shards=1, replicas=4)
        with_map = ClusterSimulator(
            mysql_db, uniform_fleet(4), router_factory(),
            placement=full,
        ).run(stream)
        without = ClusterSimulator(
            mysql_db, uniform_fleet(4), router_factory(),
        ).run(stream)
        assert (_summary_sans_run_id(with_map)
                == _summary_sans_run_id(without))
        assert [r.completion_s for r in with_map.responses] == [
            r.completion_s for r in without.responses
        ]
        # The map is part of the run's identity even when vacuous.
        assert with_map.run_id != without.run_id

    def test_no_placement_leaves_router_fingerprint_alone(self,
                                                          mysql_db):
        # ``_install_placement`` must not create a ``placement``
        # instance attribute on the router when there is no map: it
        # would surface as ``placement: None`` in ``describe()`` and
        # shift the run id of every placement-free run vs the seed.
        router = DynamicConsolidateRouter(max_backlog_s=0.5)
        ClusterSimulator(mysql_db, uniform_fleet(4), router).run(
            _stream()
        )
        assert "placement" not in router.describe()
        assert "placement" not in vars(router)

    def test_unknown_placement_node_rejected(self, mysql_db):
        pm = generate_placement(["ghost", "node00"], shards=2,
                                replicas=1)
        with pytest.raises(ValueError, match="unknown"):
            ClusterSimulator(mysql_db, uniform_fleet(2),
                             RoundRobinRouter(), placement=pm)


class TestVectorizedWithPlacement:
    def _assert_identical(self, fast, slow):
        assert fast.served == slow.served
        assert fast.wall_joules == pytest.approx(
            slow.wall_joules, rel=REL
        )
        assert fast.peak_power_w == pytest.approx(
            slow.peak_power_w, rel=REL
        )
        for f, s in zip(fast.nodes, slow.nodes):
            assert f.name == s.name and f.queries == s.queries
            assert f.busy_s == pytest.approx(s.busy_s, rel=REL,
                                             abs=1e-12)
            assert f.wall_joules == pytest.approx(s.wall_joules,
                                                  rel=REL)
        for q in (0.5, 0.95, 0.99):
            assert fast.response_percentile(q) == pytest.approx(
                slow.response_percentile(q), rel=REL
            )

    @pytest.mark.parametrize("router_factory", [
        LeastLoadedRouter, HashSplitRouter,
    ])
    def test_masked_chunk_matches_loop(self, mysql_db,
                                       router_factory):
        stream = _stream(count=120)
        pm = _chained(4, shards=4, replicas=2)
        fast = ClusterSimulator(
            mysql_db, uniform_fleet(4), router_factory(),
            placement=pm,
        ).run(stream, vectorized=True)
        slow = ClusterSimulator(
            mysql_db, uniform_fleet(4), router_factory(),
            placement=pm,
        ).run(stream, vectorized=False)
        self._assert_identical(fast, slow)

    def test_unmasked_router_is_ineligible(self, mysql_db):
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(4), RoundRobinRouter(),
            placement=_chained(),
        )
        reason = sim.vectorized_ineligibility()
        assert reason is not None and "placement" in reason
        with pytest.raises(ValueError, match="placement"):
            sim.run(_stream(count=20), vectorized=True)
        # auto falls back to the loop and still serves everything
        m = sim.run(_stream(count=20))
        assert m.served == 20


class TestQuorum:
    def test_consolidate_prepare_covers_quorum(self, mysql_db):
        """ConsolidateRouter's initial awake set must hold a full
        quorum, not just node zero: every cover node starts awake and
        never sleeps."""
        pm = _chained(4, shards=4, replicas=2)
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(4, wake_latency_s=5.0),
            ConsolidateRouter(max_backlog_s=5.0), placement=pm,
        )
        m = sim.run(_stream(count=40))
        assert m.served == 40
        cover = quorum_cover(pm, sim.nodes)
        assert len(cover) > 1  # the map genuinely widens the seed set
        by_name = {n.name: n for n in m.nodes}
        for name in cover:
            assert by_name[name].sleep_s == 0.0, name

    def test_dynamic_never_sleeps_last_replica(self, mysql_db):
        """Satellite 5 regression: a hot shard whose only replica
        lives on a sleepable node must keep that node awake."""
        pm = PlacementMap((
            TablePlacement(
                "lineitem", "l_quantity", shards=2, replicas=1,
                replica_map=(("node00",), ("node01",)),
            ),
        ))
        queries = selection_workload(8).queries
        tp = pm.for_table("lineitem")
        # keep only queries that actually hit node01's shard hot
        stream = poisson_arrivals(
            [q for i, q in enumerate(
                [queries[i % 8] for i in range(60)]
            )], 0.1, seed=3,
        )
        router = DynamicConsolidateRouter(
            max_backlog_s=2.0, target_utilization=0.9, min_awake=1
        )
        m = ClusterSimulator(
            mysql_db, uniform_fleet(2, wake_latency_s=0.5), router,
            placement=pm,
        ).run(stream)
        assert m.served == 60 and not m.shed
        # both nodes are sole holders of a live shard: neither may
        # ever be asleep
        for n in m.nodes:
            assert n.sleep_s == 0.0, n.name
        # the same config *without* the quorum constraint does sleep
        # (proving the placement guard, not a lazy router, kept both
        # awake)
        base = ClusterSimulator(
            mysql_db, uniform_fleet(2, wake_latency_s=0.5),
            DynamicConsolidateRouter(
                max_backlog_s=2.0, target_utilization=0.9,
                min_awake=1,
            ),
        ).run(stream)
        assert any(n.sleep_s > 0.0 for n in base.nodes)
        assert tp.quorum == 1


class TestReReplication:
    def _crash_plan(self, at_s=1.0, recover_s=3.0):
        return FaultPlan([
            FaultSpec("crash", "node00", at_s=at_s,
                      recover_s=recover_s),
        ])

    def test_crash_restores_replication(self, mysql_db):
        pm = _chained(4, shards=4, replicas=2)
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(4), LeastLoadedRouter(),
            placement=pm, faults=self._crash_plan(),
            retry=RetryPolicy(max_attempts=4, backoff_s=0.05),
        )
        stream = _stream(count=80)
        m = sim.run(stream)
        f = m.faults
        assert f.re_replications >= 1
        assert f.copy_s > 0.0 and f.copy_joules > 0.0
        # conservation: every arrival served or visibly dead-lettered
        outcomes = sorted(
            [(r.sql, r.arrival_s) for r in m.responses]
            + [(s.sql, s.arrival_s) for s in m.shed]
        )
        assert outcomes == sorted(
            (a.sql, a.time_s) for a in stream
        )
        assert len(m.shed) == f.dead_lettered
        # replica conservation: every shard is back at (or above) its
        # target on live nodes by the horizon
        tp = pm.for_table("lineitem")
        for shard in range(tp.shards):
            holders = [
                n for n in sim.nodes
                if n.crashed_s is None and n.shards is not None
                and ("lineitem", shard) in n.shards
            ]
            assert len(holders) >= tp.replicas, shard

    def test_copy_energy_billed_on_both_endpoints(self, mysql_db):
        pm = _chained(4, shards=4, replicas=2)
        base = ClusterSimulator(
            mysql_db, uniform_fleet(4), LeastLoadedRouter(),
            placement=pm,
        ).run(_stream(count=80))
        crashed = ClusterSimulator(
            mysql_db, uniform_fleet(4), LeastLoadedRouter(),
            placement=pm, faults=self._crash_plan(),
            retry=RetryPolicy(max_attempts=4, backoff_s=0.05),
        ).run(_stream(count=80))
        # node00 held 2 shards (chained): both re-replicate, so the
        # report carries 2 copies x 2 endpoints of busy work
        assert crashed.faults.re_replications == 2
        assert crashed.faults.copy_joules > 0.0
        assert base.faults is None

    def test_no_live_source_degrades_gracefully(self, mysql_db):
        """A shard whose only replica crashed (and never recovers)
        cannot re-replicate; its queries retry, then dead-letter --
        they are never silently dropped."""
        pm = PlacementMap((
            TablePlacement(
                "lineitem", "l_quantity", shards=2, replicas=1,
                replica_map=(("node00",), ("node01",)),
            ),
        ))
        plan = FaultPlan([
            FaultSpec("crash", "node00", at_s=0.3),
        ])
        stream = _stream(count=60, distinct=8, mean_s=0.05)
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(2), LeastLoadedRouter(),
            placement=pm, faults=plan,
            retry=RetryPolicy(max_attempts=2, backoff_s=0.05),
        )
        m = sim.run(stream)
        f = m.faults
        assert f.re_replications == 0  # no live source exists
        assert len(m.shed) > 0  # the dead shard's queries dead-letter
        assert m.served + len(m.shed) == len(stream)
        assert len(m.shed) == f.dead_lettered
        outcomes = sorted(
            [(r.sql, r.arrival_s) for r in m.responses]
            + [(s.sql, s.arrival_s) for s in m.shed]
        )
        assert outcomes == sorted(
            (a.sql, a.time_s) for a in stream
        )

    def test_copy_trace_scales_with_bytes(self):
        small = replication_copy_trace(1 << 16)
        large = replication_copy_trace(1 << 24)
        assert large.bytes_total.sum() > small.bytes_total.sum()
        assert large.cycles.sum() > small.cycles.sum()
        # read + ship + write, on both compiled forms
        assert len(small) == len(large) == 3
