"""Master-queue QED: partitioning, placement, conservation (ISSUE 5).

The master admission queue holds the whole arrival stream's pending
queries partitioned by mergeable template; these tests pin its
invariants: conservation (every arrival served exactly once or shed),
per-partition timeout dispatch at expiry (not at the next arrival's
clock), batched-vs-loop playback identity with master QED enabled,
template separation, pass-through singletons, and hash-split placement.
"""

import pytest

from repro.cluster import (
    ClusterSimulator,
    ConsolidatePlacement,
    DynamicConsolidateRouter,
    HashSplitPlacement,
    LeastLoadedRouter,
    MasterQueue,
    PASSTHROUGH,
    PowerCapRouter,
    RoundRobinRouter,
    uniform_fleet,
)
from repro.core.qed.aggregator import partition_key
from repro.core.qed.policy import BatchPolicy
from repro.core.qed.queue import QueryQueue
from repro.workloads.arrivals import poisson_arrivals, uniform_arrivals
from repro.workloads.selection import selection_workload

REL = 1e-9


def _alt_query(quantity: int) -> str:
    """A second mergeable template: different select list."""
    return (f"SELECT l_orderkey, l_extendedprice FROM lineitem "
            f"WHERE l_quantity = {quantity}")


def _odd_query(quantity: int) -> str:
    """A non-mergeable shape (ORDER BY + LIMIT): pass-through."""
    return (f"SELECT l_orderkey FROM lineitem WHERE l_quantity = "
            f"{quantity} ORDER BY l_orderkey LIMIT 5")


def _mixed_stream(count=60, mean_s=0.02, seed=5):
    """Two mergeable templates plus a pass-through shape, interleaved."""
    base = selection_workload(8).queries
    pool = base + [_alt_query(q) for q in (11, 12, 13)] + [_odd_query(14)]
    return poisson_arrivals(
        [pool[i % len(pool)] for i in range(count)], mean_s, seed=seed
    )


def _master_sim(mysql_db, policy, nodes=3, placement=None,
                router=None, **fleet_kwargs):
    return ClusterSimulator(
        mysql_db, uniform_fleet(nodes, **fleet_kwargs),
        router if router is not None else LeastLoadedRouter(),
        master_queue=MasterQueue(policy, placement=placement),
    )


class TestPartitionKeys:
    def test_same_template_shares_a_key(self):
        a, b = selection_workload(2).queries
        assert partition_key(a) == partition_key(b)
        assert partition_key(a) is not None

    def test_different_select_lists_split(self):
        assert partition_key(selection_workload(1).queries[0]) != \
            partition_key(_alt_query(1))

    def test_non_mergeable_shapes_have_no_key(self):
        assert partition_key(_odd_query(1)) is None
        assert partition_key("SELECT l_orderkey FROM lineitem") is None
        assert partition_key("not even sql") is None
        assert partition_key(
            "SELECT COUNT(*) FROM lineitem "
            "WHERE l_quantity = 1 GROUP BY l_orderkey"
        ) is None


class TestConservation:
    def test_every_arrival_served_exactly_once(self, mysql_db):
        stream = _mixed_stream(count=80)
        sim = _master_sim(
            mysql_db, BatchPolicy(threshold=6, max_wait_s=0.3)
        )
        m = sim.run(stream)
        assert m.served == len(stream)
        assert not m.shed
        answered = sorted((r.sql, r.arrival_s) for r in m.responses)
        expected = sorted((a.sql, a.time_s) for a in stream)
        assert answered == expected

    def test_queries_never_complete_before_arrival(self, mysql_db):
        sim = _master_sim(mysql_db, BatchPolicy(threshold=5))
        m = sim.run(_mixed_stream())
        for r in m.responses:
            assert r.completion_s > r.arrival_s

    def test_hash_split_conserves_queries(self, mysql_db):
        stream = _mixed_stream(count=80)
        sim = _master_sim(
            mysql_db, BatchPolicy(threshold=8, max_wait_s=0.4),
            nodes=4, placement=HashSplitPlacement(),
        )
        m = sim.run(stream)
        assert m.served == len(stream)
        answered = sorted((r.sql, r.arrival_s) for r in m.responses)
        expected = sorted((a.sql, a.time_s) for a in stream)
        assert answered == expected
        # The split actually fans batches out across several nodes.
        assert sum(1 for n in m.nodes if n.queries > 0) > 1

    def test_consolidate_placement_with_dynamic_router(self, mysql_db):
        stream = _mixed_stream(count=80)
        sim = _master_sim(
            mysql_db, BatchPolicy(threshold=6, max_wait_s=0.3),
            nodes=4, placement=ConsolidatePlacement(),
            router=DynamicConsolidateRouter(max_backlog_s=1.0),
            wake_latency_s=1.0,
        )
        m = sim.run(stream)
        assert m.served == len(stream)
        # Fleet-wide batching concentrates work: the awake set stays
        # smaller than the fleet.
        assert m.awake_nodes < len(m.nodes)


class TestPartitioning:
    def test_templates_never_co_merge(self, mysql_db):
        """A merged window's queries all share one template."""
        sim = _master_sim(mysql_db, BatchPolicy(threshold=5))
        schedule = sim.schedule(_mixed_stream(count=80))
        for node in schedule.nodes:
            for work in node.scheduled:
                keys = {partition_key(sql) for sql, _ in work.queries}
                assert len(keys) == 1
        assert schedule.qed.fallback_batches == 0

    def test_passthrough_served_as_singletons(self, mysql_db):
        sim = _master_sim(mysql_db, BatchPolicy(threshold=5))
        m = sim.run(_mixed_stream(count=60))
        passthrough = m.qed.get(PASSTHROUGH)
        assert passthrough is not None
        assert passthrough.max_batch == 1
        assert passthrough.batches == passthrough.queries
        assert passthrough.merged_windows == 0
        # Both mergeable templates formed their own partitions.
        mergeable = [
            p for p in m.qed.partitions if p.partition != PASSTHROUGH
        ]
        assert len(mergeable) == 2
        assert all(p.merged_windows > 0 for p in mergeable)

    def test_report_mode_and_totals(self, mysql_db):
        stream = _mixed_stream(count=60)
        m = _master_sim(
            mysql_db, BatchPolicy(threshold=6, max_wait_s=0.3)
        ).run(stream)
        assert m.qed.mode == "master"
        assert m.qed.queries == len(stream)
        summary = m.summary()
        assert summary["qed_batches"] == float(m.qed.batches)


class TestTimeouts:
    def test_partition_timeout_fires_at_expiry(self, mysql_db):
        """Sparse arrivals: each batch starts at its own expiry, not at
        the next arrival's timestamp."""
        max_wait = 0.1
        sim = _master_sim(
            mysql_db, BatchPolicy(threshold=100, max_wait_s=max_wait),
            nodes=1,
        )
        stream = uniform_arrivals(selection_workload(4).queries, 5.0)
        m = sim.run(stream)
        assert m.served == 4
        for r in m.responses:
            assert r.start_s == pytest.approx(r.arrival_s + max_wait)
            assert r.response_s < 1.0  # nowhere near the 5 s gap

    def test_per_partition_expiry_is_independent(self, mysql_db):
        """Two partitions fill at different times; each fires on its
        own oldest query's clock."""
        max_wait = 0.2
        sim = _master_sim(
            mysql_db, BatchPolicy(threshold=100, max_wait_s=max_wait),
            nodes=2,
        )
        a = selection_workload(2).queries
        b = [_alt_query(q) for q in (11, 12)]
        # a-queries at 1.0 and 1.05; b-queries at 3.0 and 3.05.
        stream = (
            uniform_arrivals(a, 0.05, start_s=0.95)
            + uniform_arrivals(b, 0.05, start_s=2.95)
        )
        m = sim.run(stream)
        starts = sorted(r.start_s for r in m.responses)
        assert starts[0] == starts[1] == pytest.approx(1.0 + max_wait)
        assert starts[2] == starts[3] == pytest.approx(3.0 + max_wait)

    def test_threshold_only_queue_drains_at_end(self, mysql_db):
        sim = _master_sim(mysql_db, BatchPolicy(threshold=50), nodes=1)
        stream = poisson_arrivals(
            selection_workload(6).queries, 0.05, seed=2
        )
        m = sim.run(stream)
        assert m.served == 6  # trailing partial batch flushed
        # All six merged into the one flush -> one completion time.
        assert len({r.completion_s for r in m.responses}) == 1


class TestPlaybackIdentity:
    def test_batched_equals_loop_with_master_qed(self, mysql_db):
        sim = _master_sim(
            mysql_db, BatchPolicy(threshold=6, max_wait_s=0.3),
            nodes=4, placement=HashSplitPlacement(),
        )
        schedule = sim.schedule(_mixed_stream(count=100))
        batched = sim.playback(schedule, mode="batched")
        loop = sim.playback(schedule, mode="loop")
        assert batched.wall_joules == pytest.approx(
            loop.wall_joules, rel=REL
        )
        assert batched.cpu_joules == pytest.approx(
            loop.cpu_joules, rel=REL
        )
        assert batched.edp == pytest.approx(loop.edp, rel=REL)


class TestGuards:
    def test_master_queue_excludes_node_queues(self, mysql_db):
        with pytest.raises(ValueError, match="master admission queue"):
            ClusterSimulator(
                mysql_db,
                uniform_fleet(2, queue_policy=BatchPolicy(threshold=5)),
                LeastLoadedRouter(),
                master_queue=MasterQueue(BatchPolicy(threshold=5)),
            )

    def test_master_queue_excludes_powercap(self, mysql_db):
        with pytest.raises(ValueError, match="PowerCapRouter"):
            ClusterSimulator(
                mysql_db, uniform_fleet(2), PowerCapRouter(cap_w=460.0),
                master_queue=MasterQueue(BatchPolicy(threshold=5)),
            )

    def test_consolidate_router_requires_consolidate_placement(
        self, mysql_db
    ):
        """A consolidate-family router only wakes nodes from route(),
        which the master loop never calls -- any other placement would
        funnel the whole stream onto the one awake node."""
        from repro.cluster import AdaptivePvcRouter, ConsolidateRouter

        with pytest.raises(ValueError, match="ConsolidatePlacement"):
            ClusterSimulator(
                mysql_db, uniform_fleet(4),
                ConsolidateRouter(max_backlog_s=1.0),
                master_queue=MasterQueue(BatchPolicy(threshold=5)),
            )
        # Adaptive PVC likewise only acts on routed dispatches.
        with pytest.raises(ValueError, match="ConsolidatePlacement"):
            ClusterSimulator(
                mysql_db, uniform_fleet(4),
                AdaptivePvcRouter(deadline_s=0.5),
                master_queue=MasterQueue(BatchPolicy(threshold=5)),
            )
        # The cooperating placement is accepted.
        ClusterSimulator(
            mysql_db, uniform_fleet(4),
            DynamicConsolidateRouter(max_backlog_s=1.0),
            master_queue=MasterQueue(
                BatchPolicy(threshold=5),
                placement=ConsolidatePlacement(),
            ),
        )

    def test_queue_expiry_property(self):
        queue = QueryQueue(BatchPolicy(threshold=10, max_wait_s=0.5))
        assert queue.expiry_s is None
        queue.submit("SELECT 1", 2.0)
        assert queue.expiry_s == pytest.approx(2.5)
        no_timeout = QueryQueue(BatchPolicy(threshold=10))
        no_timeout.submit("SELECT 1", 2.0)
        assert no_timeout.expiry_s is None


class TestMasterQedCli:
    def test_cluster_master_qed_command(self, capsys):
        from repro.cli import main

        status = main([
            "cluster", "--sf", "0.002", "--nodes", "2",
            "--arrivals", "40", "--distinct", "8",
            "--qed", "master", "--qed-threshold", "5",
            "--qed-max-wait", "0.3", "--qed-placement", "hash",
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "QED (master)" in out
        assert "lineitem[" in out

    def test_qed_flags_validated(self, capsys):
        from repro.cli import main

        assert main(["cluster", "--qed", "master"]) == 2
        assert main(["cluster", "--qed-max-wait", "0.5"]) == 2
        # An explicit --qed off contradicts a threshold flag.
        assert main(["cluster", "--qed", "off", "--qed-batch", "5"]) == 2
        assert main(
            ["cluster", "--qed", "off", "--qed-threshold", "5"]
        ) == 2
        # The canonical threshold flag never implies a mode by itself,
        # and placement only applies to the master queue.
        assert main(["cluster", "--qed-threshold", "5"]) == 2
        assert main([
            "cluster", "--qed", "node", "--qed-threshold", "5",
            "--qed-placement", "hash",
        ]) == 2
        # The deprecated alias implies node; other modes reject it,
        # and passing both threshold spellings is a contradiction.
        assert main(["cluster", "--qed", "master", "--qed-batch", "5"]) == 2
        assert main([
            "cluster", "--qed-batch", "5", "--qed-threshold", "10",
        ]) == 2
        # A consolidate-family policy under the master queue needs the
        # cooperating placement.
        assert main([
            "cluster", "--qed", "master", "--qed-threshold", "5",
            "--policy", "dynamic",
        ]) == 2
        assert main([
            "cluster", "--policy", "powercap",
            "--qed", "node", "--qed-threshold", "5",
        ]) == 2
        assert main([
            "cluster", "--qed", "node", "--qed-threshold", "5",
            "--fleet", "examples/hetero_fleet.json",
        ]) == 2
        capsys.readouterr()
