"""Dynamic re-consolidation, adaptive PVC, heterogeneous fleets
(ISSUE 4 tentpole invariants).

* No arrival is ever served by a sleeping node: busy windows never
  intersect sleep spans, and never precede the enclosing wake's end.
* Energy conservation: batched playback equals the per-piece replay
  loop to 1e-9 relative on dynamic, adaptive, and heterogeneous runs,
  and awake playback time plus sleep time covers the whole horizon.
* Re-sleep only after drain: a node re-enters sleep only once its
  backlog is empty.
* The phase-sliced window report tiles the run exactly.
"""

import pytest

from repro.cluster import (
    AdaptivePvcRouter,
    ClusterSimulator,
    ConsolidateRouter,
    DynamicConsolidateRouter,
    NodeGroup,
    RoundRobinRouter,
    hetero_fleet,
    playback_groups,
    uniform_fleet,
)
from repro.hardware.cpu import PvcSetting, VoltageDowngrade
from repro.workloads.arrivals import (
    piecewise_schedule,
    poisson_arrivals,
    rate_schedule_arrivals,
)
from repro.workloads.selection import selection_workload

REL = 1e-9

#: High / low / high offered load: the shape that forces wake,
#: re-sleep, and re-wake in one run.
WAVE = piecewise_schedule([(8.0, 25.0), (20.0, 0.8), (8.0, 25.0)])


def _wave_stream(seed=5, distinct=12):
    queries = selection_workload(distinct).queries
    return rate_schedule_arrivals(queries, WAVE, seed=seed)


def _dynamic_router(**kwargs):
    kwargs.setdefault("max_backlog_s", 0.2)
    kwargs.setdefault("target_utilization", 0.5)
    kwargs.setdefault("ewma_alpha", 0.4)
    return DynamicConsolidateRouter(**kwargs)


def _hetero_specs(wake_latency_s=0.5):
    eco = PvcSetting(10, VoltageDowngrade.MEDIUM)
    return hetero_fleet([
        NodeGroup(2, prefix="big", hw="paper",
                  wake_latency_s=wake_latency_s),
        NodeGroup(2, prefix="eco", hw="paper-nogpu", setting=eco,
                  capacity=0.8, sleep_wall_w=2.0,
                  wake_latency_s=wake_latency_s),
    ])


class TestDynamicReconsolidation:
    def test_load_drop_triggers_resleep(self, mysql_db):
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(4, wake_latency_s=0.5),
            _dynamic_router(),
        )
        m = sim.run(_wave_stream())
        assert m.re_sleeps > 0

    def test_no_work_on_sleeping_nodes(self, mysql_db):
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(4, wake_latency_s=0.5),
            _dynamic_router(),
        )
        schedule = sim.schedule(_wave_stream())
        for node in schedule.nodes:
            spans = node.sleep_spans(schedule.horizon_s)
            for work in node.scheduled:
                for start, end in spans:
                    overlap = min(end, work.end_s) - max(start,
                                                         work.start_s)
                    assert overlap <= 1e-12, (
                        f"{node.spec.name} busy window intersects sleep"
                    )

    def test_work_never_starts_inside_wake_transition(self, mysql_db):
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(4, wake_latency_s=1.0),
            _dynamic_router(),
        )
        schedule = sim.schedule(_wave_stream())
        for node in schedule.nodes:
            for called, ready in node.wake_log:
                for work in node.scheduled:
                    inside = (
                        work.start_s > called - 1e-12
                        and work.start_s < ready - 1e-12
                    )
                    assert not inside

    def test_resleep_only_after_drain(self, mysql_db):
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(4, wake_latency_s=0.5),
            _dynamic_router(),
        )
        schedule = sim.schedule(_wave_stream())
        for node in schedule.nodes:
            for start, _ in node.sleep_log:
                if start == 0.0:
                    continue  # started asleep: provisioning, not drain
                for work in node.scheduled:
                    # anything begun before the sleep had finished
                    if work.start_s < start:
                        assert work.end_s <= start + 1e-9

    def test_energy_conservation_batched_vs_loop(self, mysql_db):
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(4, wake_latency_s=0.5),
            _dynamic_router(),
        )
        schedule = sim.schedule(_wave_stream())
        batched = sim.playback(schedule, mode="batched")
        loop = sim.playback(schedule, mode="loop")
        assert batched.wall_joules == pytest.approx(
            loop.wall_joules, rel=REL
        )
        assert batched.cpu_joules == pytest.approx(
            loop.cpu_joules, rel=REL
        )

    def test_sleep_plus_awake_covers_horizon(self, mysql_db):
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(4, wake_latency_s=0.5),
            _dynamic_router(),
        )
        m = sim.run(_wave_stream())
        for usage in m.nodes:
            covered = usage.playback.duration_s + usage.sleep_s
            assert covered == pytest.approx(m.horizon_s, rel=1e-6)

    def test_saves_awake_node_seconds_vs_spread(self, mysql_db):
        stream = _wave_stream()
        spread = ClusterSimulator(
            mysql_db, uniform_fleet(4), RoundRobinRouter()
        ).run(stream)
        dynamic = ClusterSimulator(
            mysql_db, uniform_fleet(4, wake_latency_s=0.5),
            _dynamic_router(),
        ).run(stream)
        assert dynamic.awake_node_s < spread.awake_node_s
        assert dynamic.wall_joules < spread.wall_joules
        assert dynamic.served == spread.served == len(stream)

    def test_schedule_prewakes_ahead_of_peak(self, mysql_db):
        """With the rate curve known, capacity for the second crest is
        woken during the preceding trough (wake-latency ahead), not
        after the crest's backlog has already built."""
        wake_latency = 4.0
        stream = _wave_stream()
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(4, wake_latency_s=wake_latency),
            _dynamic_router(schedule=WAVE),
        )
        schedule = sim.schedule(stream)
        # The low phase spans [8, 28); the second crest starts at 28.
        prewakes = [
            called
            for node in schedule.nodes
            for called, _ in node.wake_log
            if 8.0 < called < 28.0
        ]
        assert prewakes, "no node was pre-woken during the trough"

    def test_min_awake_respected(self, mysql_db):
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(4, wake_latency_s=0.5),
            _dynamic_router(min_awake=2),
        )
        m = sim.run(_wave_stream())
        # At every instant at least two nodes out of sleep: total sleep
        # node-seconds can never exceed (n - 2) * horizon.
        assert m.awake_node_s >= 2.0 * m.horizon_s - 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicConsolidateRouter(0.2, target_utilization=0.0)
        with pytest.raises(ValueError):
            DynamicConsolidateRouter(0.2, hysteresis=-0.1)
        with pytest.raises(ValueError):
            DynamicConsolidateRouter(0.2, ewma_alpha=0.0)
        with pytest.raises(ValueError):
            DynamicConsolidateRouter(0.2, min_awake=0)


class TestAdaptivePvcRouter:
    def test_nodes_walk_the_ladder_under_load(self, mysql_db):
        router = AdaptivePvcRouter(deadline_s=0.08)
        sim = ClusterSimulator(mysql_db, uniform_fleet(2), router)
        schedule = sim.schedule(_wave_stream())
        settings_used = {
            work.setting
            for node in schedule.nodes
            for work in node.scheduled
        }
        assert len(settings_used) > 1, "load never moved the ladder"
        assert settings_used <= set(router.ladder)

    def test_energy_conservation_with_retuning(self, mysql_db):
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(2),
            AdaptivePvcRouter(deadline_s=0.08),
        )
        schedule = sim.schedule(_wave_stream())
        batched = sim.playback(schedule, mode="batched")
        loop = sim.playback(schedule, mode="loop")
        for a, b in zip(batched.nodes, loop.nodes):
            assert a.playback.wall_joules == pytest.approx(
                b.playback.wall_joules, rel=REL
            )
            assert a.playback.duration_s == pytest.approx(
                b.playback.duration_s, rel=REL
            )

    def test_cheap_settings_win_when_idle(self, mysql_db):
        """A lazy stream keeps every node at the energy-saving end of
        the ladder; stock-pinned spread must burn more CPU energy for
        the same work."""
        queries = selection_workload(6).queries
        stream = poisson_arrivals(queries * 5, 0.5, seed=2)
        stock = ClusterSimulator(
            mysql_db, uniform_fleet(2), RoundRobinRouter()
        ).run(stream)
        adaptive = ClusterSimulator(
            mysql_db, uniform_fleet(2),
            AdaptivePvcRouter(deadline_s=10.0),
        ).run(stream)
        assert adaptive.cpu_joules < stock.cpu_joules

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptivePvcRouter(deadline_s=0.0)
        with pytest.raises(ValueError):
            AdaptivePvcRouter(deadline_s=1.0, ladder=[])
        with pytest.raises(ValueError):
            AdaptivePvcRouter(deadline_s=1.0, slack_threshold=1.5)


class TestHeterogeneousFleet:
    def test_playback_groups_split_by_hw_and_setting(self, mysql_db):
        sim = ClusterSimulator(
            mysql_db, _hetero_specs(), RoundRobinRouter()
        )
        groups = playback_groups(sim.nodes)
        assert len(groups) == 2
        assert sorted(len(g) for g in groups) == [2, 2]

    def test_same_setting_different_hw_not_grouped(self, mysql_db):
        specs = hetero_fleet([
            NodeGroup(2, prefix="a", hw="paper"),
            NodeGroup(2, prefix="b", hw="paper-nogpu"),
        ])
        sim = ClusterSimulator(mysql_db, specs, RoundRobinRouter())
        assert len(playback_groups(sim.nodes)) == 2

    def test_batched_equals_loop_on_hetero_fleet(self, mysql_db):
        sim = ClusterSimulator(
            mysql_db, _hetero_specs(), _dynamic_router()
        )
        schedule = sim.schedule(_wave_stream())
        batched = sim.playback(schedule, mode="batched")
        loop = sim.playback(schedule, mode="loop")
        for a, b in zip(batched.nodes, loop.nodes):
            assert a.playback.wall_joules == pytest.approx(
                b.playback.wall_joules, rel=REL
            )
        assert batched.wall_joules == pytest.approx(
            loop.wall_joules, rel=REL
        )

    def test_hw_profiles_differ_in_energy(self, mysql_db):
        """The GPU-less profile draws measurably less idle power."""
        stream = _wave_stream()
        full = ClusterSimulator(
            mysql_db, uniform_fleet(2, hw="paper"), RoundRobinRouter()
        ).run(stream)
        lean = ClusterSimulator(
            mysql_db, uniform_fleet(2, hw="paper-nogpu"),
            RoundRobinRouter(),
        ).run(stream)
        assert lean.wall_joules < full.wall_joules

    def test_capacity_scales_consolidate_backlog(self, mysql_db):
        stream = _wave_stream()
        small = ClusterSimulator(
            mysql_db,
            uniform_fleet(4, capacity=0.05, wake_latency_s=0.01),
            ConsolidateRouter(max_backlog_s=1.0),
        ).run(stream)
        large = ClusterSimulator(
            mysql_db,
            uniform_fleet(4, capacity=50.0, wake_latency_s=0.01),
            ConsolidateRouter(max_backlog_s=1.0),
        ).run(stream)
        assert large.awake_nodes < small.awake_nodes

    def test_fleet_validation(self):
        with pytest.raises(ValueError):
            hetero_fleet([])
        with pytest.raises(ValueError):
            hetero_fleet([NodeGroup(2, prefix="x"),
                          NodeGroup(2, prefix="x")])
        with pytest.raises(ValueError):
            NodeGroup(1, hw="no-such-profile")
        with pytest.raises(ValueError):
            NodeGroup(0)

    def test_unknown_hw_rejected_by_simulator(self, mysql_db):
        from repro.cluster import NodeSpec

        spec = NodeSpec("weird", hw="missing")
        with pytest.raises(ValueError):
            ClusterSimulator(mysql_db, [spec], RoundRobinRouter())


class TestWindowReport:
    def test_windows_tile_the_run(self, mysql_db):
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(4, wake_latency_s=0.5),
            _dynamic_router(),
        )
        m = sim.run(_wave_stream())
        windows = m.window_report(7.0)
        assert windows[0].start_s == 0.0
        assert windows[-1].end_s == pytest.approx(m.horizon_s)
        for a, b in zip(windows, windows[1:]):
            assert b.start_s == pytest.approx(a.end_s)
        assert sum(w.served for w in windows) == m.served
        assert sum(w.arrivals for w in windows) == m.served + len(m.shed)
        assert sum(w.re_sleeps for w in windows) == m.re_sleeps
        assert sum(w.awake_node_s for w in windows) == pytest.approx(
            m.awake_node_s, rel=1e-9
        )

    def test_modeled_energy_tracks_playback_energy(self, mysql_db):
        """The envelope model attributes energy in time; its total must
        land near the exact playback total (same linear model the
        power-cap router trusts)."""
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(4, wake_latency_s=0.5),
            _dynamic_router(),
        )
        m = sim.run(_wave_stream())
        modeled = sum(
            w.modeled_joules for w in m.window_report(5.0)
        )
        assert modeled == pytest.approx(m.wall_joules, rel=0.2)

    def test_validation(self, mysql_db):
        sim = ClusterSimulator(
            mysql_db, uniform_fleet(2), RoundRobinRouter()
        )
        m = sim.run(_wave_stream())
        with pytest.raises(ValueError):
            m.window_report(0.0)
