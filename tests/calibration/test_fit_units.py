"""Unit tests for the fit/residual machinery itself."""

import pytest

from repro.calibration import fit, targets


class TestResidual:
    def test_errors(self):
        r = fit.Residual("x", 2.0, 2.1)
        assert r.abs_error == pytest.approx(0.1)
        assert r.rel_error == pytest.approx(0.05)

    def test_zero_paper_value(self):
        r = fit.Residual("x", 0.0, 0.5)
        assert r.rel_error == 0.0


class TestResidualSets:
    def test_table1_has_all_rows(self):
        residuals = fit.table1_residuals()
        assert len(residuals) == len(targets.TABLE1_ROWS)
        labels = [r.label for r in residuals]
        assert labels[0].startswith("PSU")

    def test_fig5_has_three_factors(self):
        residuals = fit.fig5_residuals()
        assert len(residuals) == 3
        assert all("improvement" in r.label for r in residuals)

    def test_pvc_residuals_cover_grid(self):
        residuals = fit.pvc_residuals("mysql", scale_factor=0.01)
        # 2 downgrades x 3 levels x (energy, time)
        assert len(residuals) == 12
        assert sum("energy" in r.label for r in residuals) == 6
        assert sum("time" in r.label for r in residuals) == 6

    def test_qed_residuals_selected_batches(self):
        residuals = fit.qed_residuals(scale_factor=0.02,
                                      batch_sizes=(35,))
        assert len(residuals) == 2

    def test_headline_residuals_four_entries(self):
        residuals = fit.headline_residuals(scale_factor=0.01)
        labels = {r.label for r in residuals}
        assert labels == {
            "commercial headline energy", "commercial headline time",
            "mysql headline energy", "mysql headline time",
        }


class TestTargetHelpers:
    def test_energy_ratio_target_validates_keys(self):
        with pytest.raises(KeyError):
            targets.energy_ratio_target("mysql", "medium", 7)
        with pytest.raises(KeyError):
            targets.energy_ratio_target("oracle", "medium", 5)

    def test_edp_consistency(self):
        """Energy targets x time model reproduce the EDP deltas they
        were derived from (internal consistency of targets.py)."""
        for (profile, downgrade), deltas in targets.EDP_DELTAS.items():
            for pct, edp_delta in deltas.items():
                energy = targets.energy_ratio_target(
                    profile, downgrade, pct
                )
                if profile == "mysql":
                    time_ratio = targets.mysql_time_ratio(pct)
                else:
                    time_ratio = targets.commercial_time_ratio(pct)
                assert energy * time_ratio == pytest.approx(
                    1.0 + edp_delta, abs=1e-9
                )
