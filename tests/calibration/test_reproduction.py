"""Headline reproduction tests: the paper's numbers, end to end.

Every assertion here exercises the full stack -- SQL parsing, planning,
vectorized execution, counters, the trace cost model, and the simulated
machine -- at a small scale factor, and compares against the numbers the
paper reports.  Tolerances come from ``repro.calibration.targets``.
"""

import pytest

from repro.calibration import fit, targets


@pytest.fixture(scope="module")
def commercial_pvc():
    return fit.pvc_residuals("commercial", scale_factor=0.02)


@pytest.fixture(scope="module")
def mysql_pvc():
    return fit.pvc_residuals("mysql", scale_factor=0.02)


class TestPvcReproduction:
    def test_commercial_sweep(self, commercial_pvc):
        for residual in commercial_pvc:
            assert residual.abs_error <= targets.PVC_RATIO_TOLERANCE, (
                residual.label, residual.paper, residual.measured
            )

    def test_mysql_sweep(self, mysql_pvc):
        for residual in mysql_pvc:
            assert residual.abs_error <= targets.PVC_RATIO_TOLERANCE, (
                residual.label, residual.paper, residual.measured
            )

    def test_commercial_headline(self, commercial_pvc):
        """-49% CPU energy for +3% response time (abstract)."""
        by_label = {r.label: r for r in commercial_pvc}
        energy = by_label["commercial medium 5% energy"]
        time = by_label["commercial medium 5% time"]
        assert energy.measured == pytest.approx(0.51, abs=0.03)
        assert time.measured == pytest.approx(1.03, abs=0.01)

    def test_mysql_headline(self, mysql_pvc):
        """-20% CPU energy for +6% response time (abstract)."""
        by_label = {r.label: r for r in mysql_pvc}
        energy = by_label["mysql medium 5% energy"]
        time = by_label["mysql medium 5% time"]
        assert energy.measured == pytest.approx(0.80, abs=0.03)
        assert time.measured == pytest.approx(1.055, abs=0.01)

    def test_underclocking_beyond_5_worsens_energy(self, commercial_pvc,
                                                   mysql_pvc):
        """'Underclocking beyond 5% actually increases the energy
        consumption' -- both engines, both downgrades."""
        for rows in (commercial_pvc, mysql_pvc):
            by_label = {r.label: r.measured for r in rows}
            for profile in ("commercial", "mysql"):
                for downgrade in ("small", "medium"):
                    series = [
                        by_label.get(f"{profile} {downgrade} {p}% energy")
                        for p in (5, 10, 15)
                    ]
                    series = [s for s in series if s is not None]
                    if series:
                        assert series == sorted(series)


class TestAbsoluteMagnitudes:
    def test_stock_commercial_run(self):
        """48.5 s / 1228.7 J CPU / 214.7 J disk at SF 1.0.

        Absolute magnitudes are SF-extrapolated; per-query fixed
        overheads make them drift a few percent at small SF, hence the
        wider tolerance than the ratio tests.
        """
        residuals = fit.commercial_absolute_residuals(scale_factor=0.02)
        for residual in residuals:
            assert residual.rel_error <= 0.08, (
                residual.label, residual.paper, residual.measured
            )

    def test_warm_cold(self):
        """Cold run ~3x longer; CPU 2146 J, disk 1135 J (Sec. 3.5)."""
        residuals = fit.warm_cold_residuals(scale_factor=0.02)
        for residual in residuals:
            assert residual.rel_error <= targets.WARMCOLD_REL_TOLERANCE, (
                residual.label, residual.paper, residual.measured
            )


class TestTable1:
    def test_buildup(self):
        for residual in fit.table1_residuals():
            assert residual.abs_error <= targets.TABLE1_WATTS_TOLERANCE, (
                residual.label, residual.paper, residual.measured
            )


class TestFig5:
    def test_random_improvement_factors(self):
        for residual in fit.fig5_residuals():
            assert (
                residual.rel_error
                <= targets.FIG5_IMPROVEMENT_REL_TOLERANCE
            ), (residual.label, residual.paper, residual.measured)


class TestQedReproduction:
    def test_figure6_points(self):
        residuals = fit.qed_residuals()
        for residual in residuals:
            assert residual.abs_error <= targets.QED_RATIO_TOLERANCE, (
                residual.label, residual.paper, residual.measured
            )

    def test_headline(self):
        """-54% energy for +43% response time at batch size 50."""
        residuals = {
            r.label: r.measured
            for r in fit.qed_residuals(batch_sizes=(50,))
        }
        assert residuals["qed batch 50 energy ratio"] == pytest.approx(
            0.46, abs=0.05
        )
        assert residuals["qed batch 50 response ratio"] == pytest.approx(
            1.43, abs=0.05
        )
