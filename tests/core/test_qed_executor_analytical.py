"""QED executor comparisons and the analytical model."""

import pytest

from repro.core.qed.analytical import QedModel, expected_or_comparisons
from repro.core.qed.executor import QedExecutor
from repro.workloads.runner import WorkloadRunner
from repro.workloads.selection import selection_workload


@pytest.fixture()
def executor(mysql_db, sut) -> QedExecutor:
    return QedExecutor(WorkloadRunner(mysql_db, sut))


class TestExecutor:
    def test_sequential_outcome(self, executor):
        outcome = executor.run_sequential(selection_workload(4).queries)
        assert outcome.batch_size == 4
        # average completion ~ (N+1)/2 single-query times
        single = outcome.completion_times_s[0]
        assert outcome.avg_response_s == pytest.approx(
            2.5 * single, rel=0.01
        )

    def test_batched_outcome_answers_all_at_end(self, executor):
        outcome = executor.run_batched(selection_workload(4).queries)
        assert outcome.avg_response_s == outcome.total_time_s
        assert outcome.split.unmatched_rows == 0
        assert len(outcome.split.results) == 4

    def test_qed_saves_energy_costs_time(self, executor):
        """The core tradeoff at a healthy batch size."""
        comparison = executor.compare(selection_workload(20).queries)
        assert comparison.energy_ratio < 0.9
        assert comparison.response_ratio > 1.0
        assert comparison.edp_ratio < 1.0

    def test_bigger_batches_save_more_energy(self, executor):
        small = executor.compare(selection_workload(10).queries)
        large = executor.compare(selection_workload(30).queries)
        assert large.energy_ratio < small.energy_ratio

    def test_position_degradation_monotone(self, executor):
        comparison = executor.compare(selection_workload(10).queries)
        degradation = comparison.position_degradation()
        assert degradation == sorted(degradation, reverse=True)
        assert degradation[0] > degradation[-1]

    def test_first_query_degradation_grows_with_batch(self, executor):
        """Paper: 'the degradation in response time for the first query
        increases as the batch size increases.'"""
        small = executor.compare(selection_workload(10).queries)
        large = executor.compare(selection_workload(30).queries)
        assert (
            large.position_degradation()[0]
            > small.position_degradation()[0]
        )

    def test_batch_of_one_is_pure_overhead(self, executor):
        comparison = executor.compare(selection_workload(1).queries)
        # Nothing amortizes; QED only adds split work.
        assert comparison.energy_ratio >= 1.0
        assert comparison.response_ratio >= 1.0


class TestExpectedComparisons:
    def test_full_coverage(self):
        # 50 of 50 values: every row matches; expected ~ (50+1)/2
        assert expected_or_comparisons(50, 50) == pytest.approx(25.5)

    def test_single_disjunct(self):
        # 1/50 rows match at cost 1; 49/50 miss at cost 1.
        assert expected_or_comparisons(1, 50) == pytest.approx(1.0)

    def test_saturates(self):
        values = [expected_or_comparisons(n, 50) for n in (35, 40, 45, 50)]
        deltas = [b - a for a, b in zip(values, values[1:])]
        assert all(d < 1.5 for d in deltas)  # nearly flat

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_or_comparisons(0, 50)
        with pytest.raises(ValueError):
            expected_or_comparisons(51, 50)


class TestAnalyticalModel:
    def test_shares_must_sum(self):
        with pytest.raises(ValueError):
            QedModel(scan_share=0.5, compare_share=0.5, result_share=0.5)

    def test_response_ratio_declines_with_batch(self):
        model = QedModel()
        ratios = [model.response_ratio(n) for n in (35, 40, 45, 50)]
        assert ratios == sorted(ratios, reverse=True)

    def test_first_worst_last_best(self):
        model = QedModel()
        n = 40
        first = model.first_query_degradation(n)
        last = model.last_query_degradation(n)
        assert first > model.response_ratio(n) > last

    def test_first_degradation_grows(self):
        model = QedModel()
        assert (
            model.first_query_degradation(50)
            > model.first_query_degradation(35)
        )

    def test_sla_max_batch(self):
        model = QedModel()
        tight = model.max_batch_for_sla(3.0)
        loose = model.max_batch_for_sla(30.0)
        assert 0 <= tight < loose <= 50

    def test_position_validation(self):
        with pytest.raises(ValueError):
            QedModel().sequential_completion(0)
