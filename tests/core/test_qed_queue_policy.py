"""QED batching policy and admission queue."""

import pytest

from repro.core.qed.policy import BatchPolicy, PAPER_POLICIES
from repro.core.qed.queue import QueryQueue


class TestBatchPolicy:
    def test_threshold_dispatch(self):
        policy = BatchPolicy(threshold=3)
        assert not policy.should_dispatch(2, 100.0)
        assert policy.should_dispatch(3, 0.0)

    def test_timeout_dispatch(self):
        policy = BatchPolicy(threshold=100, max_wait_s=5.0)
        assert not policy.should_dispatch(1, 4.9)
        assert policy.should_dispatch(1, 5.0)

    def test_no_timeout_by_default(self):
        policy = BatchPolicy(threshold=10)
        assert not policy.should_dispatch(1, 1e9)

    def test_empty_queue_never_dispatches(self):
        assert not BatchPolicy(1).should_dispatch(0, 1e9)

    def test_paper_policies(self):
        assert [p.threshold for p in PAPER_POLICIES] == [35, 40, 45, 50]

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(0)
        with pytest.raises(ValueError):
            BatchPolicy(1, max_wait_s=-1.0)


class TestQueryQueue:
    def test_fills_then_dispatches(self):
        queue = QueryQueue(BatchPolicy(threshold=3))
        assert queue.submit("q1", 0.0) is None
        assert queue.submit("q2", 1.0) is None
        batch = queue.submit("q3", 2.0)
        assert batch is not None
        assert batch.sqls == ["q1", "q2", "q3"]
        assert len(queue) == 0

    def test_queue_waits_recorded(self):
        queue = QueryQueue(BatchPolicy(threshold=2))
        queue.submit("q1", 0.0)
        batch = queue.submit("q2", 4.0)
        assert batch.queue_waits() == [4.0, 0.0]

    def test_timeout_via_tick(self):
        queue = QueryQueue(BatchPolicy(threshold=10, max_wait_s=2.0))
        queue.submit("q1", 0.0)
        assert queue.tick(1.0) is None
        batch = queue.tick(2.5)
        assert batch is not None and batch.size == 1

    def test_flush(self):
        queue = QueryQueue(BatchPolicy(threshold=100))
        queue.submit("q1", 0.0)
        queue.submit("q2", 0.5)
        batch = queue.flush(1.0)
        assert batch.size == 2
        assert queue.flush(2.0) is None

    def test_dispatch_history(self):
        queue = QueryQueue(BatchPolicy(threshold=1))
        queue.submit("a", 0.0)
        queue.submit("b", 1.0)
        assert len(queue.dispatched) == 2

    def test_query_ids_monotone(self):
        queue = QueryQueue(BatchPolicy(threshold=2))
        queue.submit("a", 0.0)
        batch = queue.submit("b", 0.0)
        ids = [q.query_id for q in batch.queries]
        assert ids == [0, 1]
