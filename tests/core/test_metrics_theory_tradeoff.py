"""Core metrics: EDP algebra, iso-EDP, Pareto, theory, tradeoff curves."""

import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import (
    OperatingPoint,
    RatioPoint,
    edp,
    iso_edp_curve,
    pareto_front,
)
from repro.core.theory import (
    circuit_power_w,
    edp_proportional,
    theoretical_edp_ratio,
    theoretical_edp_series,
)
from repro.core.tradeoff import TradeoffCurve
from repro.hardware.cpu import (
    PvcSetting,
    VoltageDowngrade,
    e8500_like_spec,
)
from repro.hardware.profiles import build_voltage_table, pvc_settings_grid
from repro.hardware.system import CPU_BOUND


class TestEdp:
    def test_product(self):
        assert edp(10.0, 2.0) == 20.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            edp(-1.0, 2.0)

    @given(e=st.floats(0.01, 100), t=st.floats(0.01, 100))
    def test_symmetry_scale(self, e, t):
        assert edp(e, t) == pytest.approx(edp(t, e))


class TestRatioPoints:
    def test_ratios(self):
        base = OperatingPoint("stock", 10.0, 100.0)
        point = OperatingPoint("a", 10.3, 51.0)
        ratio = point.ratios_vs(base)
        assert ratio.time_ratio == pytest.approx(1.03)
        assert ratio.energy_ratio == pytest.approx(0.51)
        assert ratio.edp_delta == pytest.approx(0.51 * 1.03 - 1)
        assert ratio.below_iso_edp

    def test_iso_edp_curve(self):
        points = iso_edp_curve([0.5, 1.0, 2.0])
        assert points == [(0.5, 2.0), (1.0, 1.0), (2.0, 0.5)]
        with pytest.raises(ValueError):
            iso_edp_curve([0.0])

    def test_pareto_front(self):
        points = [
            RatioPoint("a", 1.0, 1.0),
            RatioPoint("b", 1.1, 0.6),    # on the front
            RatioPoint("c", 1.2, 0.7),    # dominated by b
            RatioPoint("d", 1.05, 0.9),   # front
        ]
        front = {p.label for p in pareto_front(points)}
        assert "b" in front and "c" not in front


class TestTheory:
    def test_circuit_power(self):
        assert circuit_power_w(1e-9, 1.0, 3e9) == pytest.approx(3.0)

    def test_edp_ratio_definition(self):
        ratio = theoretical_edp_ratio(1.0, 2.85e9, 1.25, 3.0e9)
        expected = (1.0 ** 2 / 2.85e9) / (1.25 ** 2 / 3.0e9)
        assert ratio == pytest.approx(expected)

    def test_lower_voltage_lowers_edp(self):
        base = edp_proportional(1.25, 3e9)
        assert edp_proportional(1.10, 3e9) < base

    def test_lower_frequency_raises_edp(self):
        """Sec. 3.4: EDP ~ V^2/F worsens as F drops at fixed voltage --
        why underclocking beyond 5% hurts."""
        base = edp_proportional(1.25, 3e9)
        assert edp_proportional(1.25, 2.55e9) > base

    def test_series_tracks_calibrated_table(self):
        """The theoretical series from calibrated voltages reproduces the
        paper's Fig. 3/4 EDP ordering: medium 5% best, small 15% worst."""
        spec = e8500_like_spec()
        table = build_voltage_table(CPU_BOUND, spec)
        settings = [
            PvcSetting(pct, dg)
            for dg in (VoltageDowngrade.SMALL, VoltageDowngrade.MEDIUM)
            for pct in (5, 10, 15)
        ]
        series = {
            (p.setting.downgrade, p.setting.underclock_pct): p.edp_ratio
            for p in theoretical_edp_series(spec, settings, table)
        }
        med = [series[(VoltageDowngrade.MEDIUM, p)] for p in (5, 10, 15)]
        small = [series[(VoltageDowngrade.SMALL, p)] for p in (5, 10, 15)]
        assert med == sorted(med)      # worsens with deeper underclock
        assert small == sorted(small)
        assert med[0] < small[0]       # medium saves more
        assert small[2] > 1.0          # small 15% is worse than stock


class TestTradeoffCurve:
    def _curve(self) -> TradeoffCurve:
        base = OperatingPoint("stock", 10.0, 100.0)
        curve = TradeoffCurve(baseline=base)
        curve.add(OperatingPoint("A", 10.3, 51.0))
        curve.add(OperatingPoint("B", 10.7, 58.0))
        curve.add(OperatingPoint("C", 11.1, 70.0))
        return curve

    def test_ratio_for(self):
        curve = self._curve()
        assert curve.ratio_for("A").energy_ratio == pytest.approx(0.51)
        with pytest.raises(KeyError):
            curve.ratio_for("nope")

    def test_best_by_edp_is_setting_a(self):
        """Fig. 1: setting A dominates B and C."""
        assert self._curve().best_by_edp().label == "A"

    def test_interesting_points_below_iso_edp(self):
        interesting = {p.label for p in self._curve().interesting_points()}
        assert interesting == {"A", "B", "C"}

    def test_rows(self):
        rows = self._curve().rows()
        assert rows[0][0] == "stock"
        assert rows[0][1] == pytest.approx(1.0)

    def test_grid_helper(self):
        grid = pvc_settings_grid()
        assert sum(1 for s in grid if s.is_stock) == 1
        assert len(pvc_settings_grid(include_stock=False)) == 6
