"""PVC: controller, sweep, and the SLA advisor."""

import pytest

from repro.core.metrics import OperatingPoint
from repro.core.pvc.advisor import OperatingPointAdvisor, Sla
from repro.core.pvc.controller import (
    PvcController,
    UnstableSettingError,
    check_stability,
)
from repro.core.pvc.sweep import PvcSweep
from repro.core.tradeoff import TradeoffCurve
from repro.hardware.cpu import PvcSetting, STOCK_SETTING, VoltageDowngrade
from repro.workloads.runner import WorkloadRunner
from repro.workloads.selection import selection_query


class TestController:
    def test_apply_and_reset(self, sut):
        controller = PvcController(sut)
        setting = PvcSetting(5, VoltageDowngrade.MEDIUM)
        controller.apply(setting)
        assert sut.setting == setting
        controller.reset()
        assert sut.setting == STOCK_SETTING

    def test_context_manager_restores(self, sut):
        controller = PvcController(sut)
        with controller.applied(PvcSetting(10, VoltageDowngrade.SMALL)):
            assert sut.setting.underclock_pct == 10
        assert sut.setting == STOCK_SETTING

    def test_context_manager_restores_on_error(self, sut):
        controller = PvcController(sut)
        with pytest.raises(RuntimeError):
            with controller.applied(PvcSetting(5)):
                raise RuntimeError("boom")
        assert sut.setting == STOCK_SETTING

    def test_stability_envelope(self):
        check_stability(PvcSetting(15, VoltageDowngrade.MEDIUM))
        with pytest.raises(UnstableSettingError):
            check_stability(PvcSetting(40))

    def test_unstable_rejected_by_controller(self, sut):
        controller = PvcController(sut)
        with pytest.raises(UnstableSettingError):
            controller.apply(PvcSetting(50))
        assert sut.setting == STOCK_SETTING

    def test_enforcement_can_be_disabled(self, sut):
        controller = PvcController(sut, enforce_stability=False)
        controller.apply(PvcSetting(50))
        assert sut.setting.underclock_pct == 50


class TestSweep:
    def test_sweep_produces_full_curve(self, mysql_db, sut):
        runner = WorkloadRunner(mysql_db, sut)
        sweep = PvcSweep(runner, [selection_query(1)])
        curve = sweep.run()
        assert len(curve.all_points) == 7
        labels = [p.label for p in curve.all_points]
        assert labels[0] == "stock"

    def test_sweep_restores_stock(self, mysql_db, sut):
        runner = WorkloadRunner(mysql_db, sut)
        PvcSweep(runner, [selection_query(1)]).run()
        assert sut.setting == STOCK_SETTING

    def test_all_downgraded_points_save_energy(self, mysql_db, sut):
        runner = WorkloadRunner(mysql_db, sut)
        curve = PvcSweep(runner, [selection_query(2)]).run()
        for ratio in curve.ratios()[1:]:
            assert ratio.energy_ratio < 1.0
            assert ratio.time_ratio > 1.0


def _paper_like_curve() -> TradeoffCurve:
    base = OperatingPoint("stock", 48.5, 1228.7, STOCK_SETTING)
    curve = TradeoffCurve(baseline=base)
    curve.add(OperatingPoint(
        "A", 50.0, 627.0, PvcSetting(5, VoltageDowngrade.MEDIUM)
    ))
    curve.add(OperatingPoint(
        "B", 51.7, 714.0, PvcSetting(10, VoltageDowngrade.MEDIUM)
    ))
    curve.add(OperatingPoint(
        "C", 53.6, 855.0, PvcSetting(15, VoltageDowngrade.MEDIUM)
    ))
    return curve


class TestAdvisor:
    def test_sla_admits_within_budget(self):
        advisor = OperatingPointAdvisor(_paper_like_curve())
        chosen = advisor.choose(Sla(max_time_increase=0.05))
        assert chosen.label == "A"

    def test_tight_sla_keeps_stock(self):
        advisor = OperatingPointAdvisor(_paper_like_curve())
        chosen = advisor.choose(Sla(max_time_increase=0.0))
        assert chosen.label == "stock"

    def test_loose_sla_still_prefers_lowest_energy(self):
        """B and C cost more energy AND more time than A, so even a
        loose SLA picks A (the paper's Fig. 1 argument)."""
        advisor = OperatingPointAdvisor(_paper_like_curve())
        chosen = advisor.choose(Sla(max_time_increase=0.5))
        assert chosen.label == "A"

    def test_peak_load_picks_fastest(self):
        advisor = OperatingPointAdvisor(_paper_like_curve())
        chosen = advisor.choose_for_load(0.95, Sla(0.05))
        assert chosen.label == "stock"

    def test_off_peak_saves_energy(self):
        advisor = OperatingPointAdvisor(_paper_like_curve())
        chosen = advisor.choose_for_load(0.30, Sla(0.05))
        assert chosen.label == "A"

    def test_savings_report(self):
        advisor = OperatingPointAdvisor(_paper_like_curve())
        report = advisor.savings_report(Sla(0.05))
        assert report["energy_delta"] == pytest.approx(-0.49, abs=0.01)
        assert report["time_delta"] == pytest.approx(0.031, abs=0.01)

    def test_sla_validation(self):
        with pytest.raises(ValueError):
            Sla(-0.1)

    def test_invalid_load(self):
        advisor = OperatingPointAdvisor(_paper_like_curve())
        with pytest.raises(ValueError):
            advisor.choose_for_load(1.5, Sla(0.05))
