"""System-level QED accounting: the sleeping-server model."""

import pytest

from repro.core.qed.provisioning import (
    ProvisioningOutcome,
    SleepingServerModel,
)
from repro.hardware.profiles import paper_sut


@pytest.fixture()
def model(sut) -> SleepingServerModel:
    return SleepingServerModel(sut)


class TestOutcome:
    def test_totals(self):
        outcome = ProvisioningOutcome(
            window_s=100.0, busy_s=20.0,
            active_wall_j=2000.0, idle_wall_j=800.0,
        )
        assert outcome.total_wall_j == 2800.0
        assert outcome.duty_cycle == pytest.approx(0.2)


class TestSleepingServer:
    def test_idle_wall_is_substantial(self, model):
        """2008-era hardware: the idle machine draws ~70 W wall (Table 1
        full system + disk) -- the energy-proportionality problem the
        paper cites."""
        assert 65.0 < model.idle_wall_w() < 90.0

    def test_sleep_draws_far_less(self, model):
        assert model.sleep_wall_w < model.idle_wall_w() / 10

    def test_always_on_charges_idle_window(self, model):
        outcome = model.always_on(100.0, 20.0, 2000.0)
        assert outcome.idle_wall_j == pytest.approx(
            80.0 * model.idle_wall_w()
        )

    def test_sleeper_charges_sleep_power(self, model):
        outcome = model.sleep_between_batches(100.0, 20.0, 2000.0)
        assert outcome.idle_wall_j == pytest.approx(
            80.0 * model.sleep_wall_w
        )

    def test_system_saving_positive_at_low_duty(self, model):
        """At low utilization (the data-center common case), sleeping
        between batches saves a large share of whole-window energy even
        if QED's active energy were no better."""
        saving = model.system_saving(
            window_s=600.0,
            sequential_busy_s=60.0, sequential_wall_j=6000.0,
            batched_busy_s=50.0, batched_wall_j=5000.0,
        )
        assert saving > 0.5

    def test_saving_shrinks_at_high_duty(self, model):
        low = model.system_saving(600.0, 60.0, 6000.0, 50.0, 5000.0)
        high = model.system_saving(600.0, 540.0, 54000.0, 500.0, 50000.0)
        assert high < low

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.always_on(0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            model.always_on(10.0, 20.0, 0.0)
        with pytest.raises(ValueError):
            SleepingServerModel(paper_sut(), sleep_wall_w=-1.0)
