"""Global fleet placement and mid-flight adaptive PVC control."""

import pytest

from repro.core.fleet import Fleet, Placement, ServerSpec, server_from_sut
from repro.core.pvc.adaptive import (
    AdaptiveController,
    DEFAULT_LADDER,
)
from repro.hardware.cpu import STOCK_SETTING
from repro.workloads.runner import WorkloadRunner
from repro.workloads.selection import selection_query


def _fleet(n: int = 4) -> Fleet:
    return Fleet([
        ServerSpec(f"s{i}", idle_wall_w=70.0, busy_wall_w=110.0)
        for i in range(n)
    ])


class TestServerSpec:
    def test_linear_power(self):
        spec = ServerSpec("x", 70.0, 110.0)
        assert spec.power_at(0.0) == 70.0
        assert spec.power_at(1.0) == 110.0
        assert spec.power_at(0.5) == 90.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerSpec("x", 100.0, 50.0)
        with pytest.raises(ValueError):
            ServerSpec("x", 70.0, 110.0, capacity=0)
        with pytest.raises(ValueError):
            ServerSpec("x", 70.0, 110.0).power_at(1.5)

    def test_from_sut(self, sut):
        spec = server_from_sut(sut)
        assert spec.busy_wall_w > spec.idle_wall_w > spec.sleep_wall_w


class TestFleetPlacement:
    def test_spread_even(self):
        fleet = _fleet(4)
        placement = fleet.spread(2.0)
        assert all(
            u == pytest.approx(0.5)
            for u in placement.utilizations.values()
        )

    def test_consolidate_sleeps_servers(self):
        fleet = _fleet(4)
        placement = fleet.consolidate(1.0)
        assert len(placement.awake_servers()) == 2  # 0.85 cap -> 2 hosts
        assert max(placement.utilizations.values()) <= 0.85 + 1e-9

    def test_consolidation_saves_at_low_load(self):
        """Paper Sec. 2: 'moving to higher utilization can save energy'
        because idle servers are so far from energy-proportional."""
        fleet = _fleet(8)
        assert fleet.consolidation_saving(1.0) > 0.4

    def test_no_saving_at_full_load(self):
        fleet = _fleet(4)
        # beyond the cap, consolidate falls back to spread
        assert fleet.consolidation_saving(4.0) == pytest.approx(0.0)

    def test_load_conserved(self):
        fleet = _fleet(4)
        for load in (0.5, 1.7, 3.0):
            for placement in (fleet.spread(load),
                              fleet.consolidate(load)):
                placed = sum(
                    u * fleet.servers[name].capacity
                    for name, u in placement.utilizations.items()
                )
                assert placed == pytest.approx(load)

    def test_overload_rejected(self):
        with pytest.raises(ValueError):
            _fleet(2).spread(3.0)

    def test_spread_heterogeneous_equalizes_utilization(self):
        """Even spread means equal *utilization*: each server takes
        load proportional to its capacity, not an equal absolute share."""
        fleet = Fleet([
            ServerSpec("big", 70.0, 110.0, capacity=4.0),
            ServerSpec("small", 70.0, 110.0, capacity=1.0),
        ])
        placement = fleet.spread(2.5)
        expected = 2.5 / 5.0
        assert placement.utilizations["big"] == pytest.approx(expected)
        assert placement.utilizations["small"] == pytest.approx(expected)
        loads = {
            name: u * fleet.servers[name].capacity
            for name, u in placement.utilizations.items()
        }
        assert loads["big"] == pytest.approx(4.0 * expected)
        assert loads["small"] == pytest.approx(1.0 * expected)
        assert sum(loads.values()) == pytest.approx(2.5)

    def test_heterogeneous_fills_efficient_first(self):
        fleet = Fleet([
            ServerSpec("hog", 80.0, 160.0),
            ServerSpec("sipper", 40.0, 80.0),
        ])
        placement = fleet.consolidate(0.5)
        assert placement.awake_servers() == ["sipper"]

    def test_energy_accounting(self):
        fleet = _fleet(2)
        placement = Placement({"s0": 1.0})  # s1 sleeps
        assert fleet.wall_power_w(placement) == pytest.approx(
            110.0 + 3.5
        )
        assert fleet.energy_j(placement, 10.0) == pytest.approx(1135.0)

    def test_fleet_validation(self):
        with pytest.raises(ValueError):
            Fleet([])
        with pytest.raises(ValueError):
            Fleet([ServerSpec("a", 1, 2), ServerSpec("a", 1, 2)])


class TestAdaptiveController:
    @pytest.fixture()
    def runner(self, mysql_db, sut) -> WorkloadRunner:
        return WorkloadRunner(mysql_db, sut)

    def _queries(self, n: int = 6) -> list[str]:
        return [selection_query(i + 1) for i in range(n)]

    def _stock_time(self, runner, queries) -> float:
        runner.sut.apply_setting(STOCK_SETTING)
        return runner.run_queries(queries).duration_s

    def test_loose_deadline_runs_cheap(self, runner):
        queries = self._queries()
        stock = self._stock_time(runner, queries)
        controller = AdaptiveController(runner)
        outcome = controller.run(queries, deadline_s=stock * 2.0)
        assert outcome.met_deadline
        # Ample slack: every query runs at the cheapest ladder entry.
        assert all(
            s == DEFAULT_LADDER[-1] for s in outcome.settings_used
        )

    def test_tight_deadline_speeds_up(self, runner):
        queries = self._queries()
        stock = self._stock_time(runner, queries)
        controller = AdaptiveController(runner)
        # Feasible only near stock speed: the 5%-underclock ladder
        # entries cost ~5% time each.
        outcome = controller.run(queries, deadline_s=stock * 1.02)
        assert STOCK_SETTING in outcome.settings_used
        assert outcome.transitions >= 1

    def test_cheap_run_saves_energy(self, runner):
        queries = self._queries()
        runner.sut.apply_setting(STOCK_SETTING)
        stock_run = runner.run_queries(queries)
        controller = AdaptiveController(runner)
        outcome = controller.run(
            queries, deadline_s=stock_run.duration_s * 2.0
        )
        assert outcome.cpu_joules < stock_run.total.cpu_joules

    def test_restores_setting(self, runner):
        controller = AdaptiveController(runner)
        controller.run(self._queries(3), deadline_s=1e6)
        assert runner.sut.setting == STOCK_SETTING

    def test_validation(self, runner):
        controller = AdaptiveController(runner)
        with pytest.raises(ValueError):
            controller.run([], deadline_s=1.0)
        with pytest.raises(ValueError):
            controller.run(self._queries(1), deadline_s=0.0)
        with pytest.raises(ValueError):
            AdaptiveController(runner, ladder=[])
