"""QED aggregation and splitting: semantics must match per-query runs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.qed.aggregator import (
    NotMergeableError,
    merge_queries,
)
from repro.core.qed.splitter import split_cost_rows, split_result
from repro.workloads.selection import selection_query, selection_workload


class TestMergeValidation:
    def test_merges_paper_workload(self):
        merged = merge_queries(selection_workload(5).queries)
        assert merged.batch_size == 5
        assert merged.hash_routable
        assert merged.routing_column == "l_quantity"
        assert list(merged.routing_values) == [1, 2, 3, 4, 5]
        assert " OR " in merged.sql

    def test_empty_batch(self):
        with pytest.raises(NotMergeableError):
            merge_queries([])

    def test_different_select_lists(self):
        with pytest.raises(NotMergeableError):
            merge_queries([
                "SELECT a FROM t WHERE a = 1",
                "SELECT b FROM t WHERE a = 2",
            ])

    def test_different_tables(self):
        with pytest.raises(NotMergeableError):
            merge_queries([
                "SELECT a FROM t WHERE a = 1",
                "SELECT a FROM u WHERE a = 2",
            ])

    def test_group_by_not_mergeable(self):
        with pytest.raises(NotMergeableError):
            merge_queries([
                "SELECT a FROM t WHERE a = 1 GROUP BY a",
                "SELECT a FROM t WHERE a = 2 GROUP BY a",
            ])

    def test_missing_where_not_mergeable(self):
        with pytest.raises(NotMergeableError):
            merge_queries(["SELECT a FROM t", "SELECT a FROM t WHERE a=1"])

    def test_overlapping_predicates_deduped(self):
        """The generalization: shared disjuncts appear once."""
        merged = merge_queries([
            selection_query(1), selection_query(2), selection_query(1),
        ])
        assert merged.batch_size == 3           # three original queries
        assert merged.sql.count("l_quantity =") == 2  # two disjuncts

    def test_range_predicates_merge_without_routing(self):
        merged = merge_queries([
            "SELECT a FROM t WHERE a < 5",
            "SELECT a FROM t WHERE a > 10",
        ])
        assert not merged.hash_routable

    def test_duplicate_values_stay_hash_routable(self):
        """Identical queries share their rows; the splitter delivers a
        row to every query routing on its value."""
        merged = merge_queries([
            selection_query(1), selection_query(2), selection_query(1),
        ])
        assert merged.hash_routable
        assert list(merged.routing_values) == [1, 2, 1]

    def test_projected_away_routing_column_not_routable(self):
        """The client routes on result rows: a routing value missing
        from (or aliased in) the select list forces the predicate
        split; SELECT * keeps every column and stays routable."""
        hidden = merge_queries([
            "SELECT a FROM t WHERE b = 1",
            "SELECT a FROM t WHERE b = 2",
        ])
        assert not hidden.hash_routable
        aliased = merge_queries([
            "SELECT b AS x FROM t WHERE b = 1",
            "SELECT b AS x FROM t WHERE b = 2",
        ])
        assert not aliased.hash_routable
        star = merge_queries([
            "SELECT * FROM t WHERE b = 1",
            "SELECT * FROM t WHERE b = 2",
        ])
        assert star.hash_routable


class TestMergedSemantics:
    def test_merged_equals_union(self, mysql_db):
        """The merged query returns exactly the union of the originals."""
        wl = selection_workload(8)
        merged = merge_queries(wl.queries)
        merged_rows = mysql_db.execute(merged.sql).row_count
        individual = sum(
            mysql_db.execute(q).row_count for q in wl.queries
        )
        assert merged_rows == individual  # disjoint predicates

    @given(batch=st.lists(
        st.integers(min_value=1, max_value=50),
        min_size=1, max_size=8, unique=True,
    ))
    @settings(max_examples=12, deadline=None)
    def test_split_partitions_merged_result(self, mysql_db, batch):
        """Property: splitting recovers each query's exact result."""
        queries = [selection_query(q) for q in batch]
        merged = merge_queries(queries)
        result = mysql_db.execute(merged.sql)
        outcome = split_result(merged, result)
        assert outcome.unmatched_rows == 0
        assert sum(outcome.per_query_rows) == result.row_count
        for sql, part in zip(queries, outcome.results):
            direct = mysql_db.execute(sql)
            assert part.row_count == direct.row_count
            assert sorted(part.rows()) == sorted(direct.rows())

    def test_predicate_split_handles_overlap(self, mysql_db):
        """With duplicate queries, both get the full result set."""
        queries = [selection_query(3), selection_query(3)]
        merged = merge_queries(queries)
        result = mysql_db.execute(merged.sql)
        outcome = split_result(merged, result)
        direct = mysql_db.execute(selection_query(3)).row_count
        # hash routing sends each row to the first matching query unless
        # predicates overlap -- overlapping batches route by predicate.
        assert sum(outcome.per_query_rows) >= direct

    def test_split_cost_rows(self, mysql_db):
        wl = selection_workload(4)
        merged = merge_queries(wl.queries)
        result = mysql_db.execute(merged.sql)
        assert split_cost_rows(merged, result) == result.row_count
