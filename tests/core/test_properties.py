"""Cross-cutting property tests on the core mechanisms."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.calibration import targets
from repro.core.metrics import OperatingPoint, RatioPoint, pareto_front
from repro.core.qed.aggregator import merge_queries
from repro.core.qed.policy import BatchPolicy
from repro.core.qed.queue import QueryQueue
from repro.core.qed.splitter import (
    _split_by_predicates,
    split_result,
)
from repro.workloads.selection import selection_query


class TestSplitterEquivalence:
    @given(batch=st.lists(
        st.integers(min_value=1, max_value=50),
        min_size=2, max_size=6, unique=True,
    ))
    @settings(max_examples=10)
    def test_hash_and_predicate_split_agree(self, mysql_db, batch):
        """For disjoint equality batches the O(1) hash router and the
        general predicate router partition identically."""
        queries = [selection_query(q) for q in batch]
        merged = merge_queries(queries)
        assert merged.hash_routable
        result = mysql_db.execute(merged.sql)
        via_hash = split_result(merged, result)
        via_pred = _split_by_predicates(merged, result)
        assert via_hash.per_query_rows == via_pred.per_query_rows
        for a, b in zip(via_hash.results, via_pred.results):
            assert sorted(a.rows()) == sorted(b.rows())


class TestQueueProperties:
    @given(
        threshold=st.integers(min_value=1, max_value=10),
        arrivals=st.integers(min_value=0, max_value=60),
    )
    def test_batches_respect_threshold(self, threshold, arrivals):
        queue = QueryQueue(BatchPolicy(threshold=threshold))
        sizes = []
        for i in range(arrivals):
            batch = queue.submit(f"q{i}", float(i))
            if batch is not None:
                sizes.append(batch.size)
        # Every dispatched batch hits the threshold exactly; the
        # remainder stays pending.
        assert all(size == threshold for size in sizes)
        assert len(queue) == arrivals - threshold * len(sizes)
        assert len(queue) < threshold

    @given(arrivals=st.lists(
        st.floats(min_value=0, max_value=100), min_size=1, max_size=30,
    ))
    def test_flush_preserves_order_and_count(self, arrivals):
        queue = QueryQueue(BatchPolicy(threshold=1_000_000))
        arrivals = sorted(arrivals)
        for i, t in enumerate(arrivals):
            queue.submit(f"q{i}", t)
        batch = queue.flush(arrivals[-1] + 1.0)
        assert batch.size == len(arrivals)
        assert [q.sql for q in batch.queries] == [
            f"q{i}" for i in range(len(arrivals))
        ]
        assert all(w >= 0 for w in batch.queue_waits())


class TestMetricsProperties:
    @given(
        time_r=st.floats(min_value=0.5, max_value=2.0),
        energy_r=st.floats(min_value=0.1, max_value=2.0),
    )
    def test_below_iso_edp_iff_product_below_one(self, time_r, energy_r):
        point = RatioPoint("p", time_r, energy_r)
        assert point.below_iso_edp == (time_r * energy_r < 1.0)

    @given(points=st.lists(
        st.tuples(
            st.floats(min_value=0.9, max_value=1.3),
            st.floats(min_value=0.3, max_value=1.2),
        ),
        min_size=1, max_size=10,
    ))
    def test_pareto_front_is_undominated(self, points):
        ratio_points = [
            RatioPoint(f"p{i}", t, e) for i, (t, e) in enumerate(points)
        ]
        front = pareto_front(ratio_points)
        assert front  # never empty
        for member in front:
            for other in ratio_points:
                strictly_better = (
                    other.time_ratio <= member.time_ratio
                    and other.energy_ratio <= member.energy_ratio
                    and (other.time_ratio < member.time_ratio
                         or other.energy_ratio < member.energy_ratio)
                )
                assert not strictly_better

    @given(
        base_t=st.floats(min_value=1.0, max_value=100.0),
        base_e=st.floats(min_value=1.0, max_value=1000.0),
        scale=st.floats(min_value=0.1, max_value=3.0),
    )
    def test_ratios_scale_free(self, base_t, base_e, scale):
        """Ratio points are invariant to the workload's absolute size."""
        base = OperatingPoint("b", base_t, base_e)
        point = OperatingPoint("p", base_t * 1.1, base_e * 0.7)
        scaled_base = OperatingPoint("b2", base_t * scale, base_e * scale)
        scaled_point = OperatingPoint(
            "p2", base_t * 1.1 * scale, base_e * 0.7 * scale
        )
        a = point.ratios_vs(base)
        b = scaled_point.ratios_vs(scaled_base)
        assert a.time_ratio == pytest.approx(b.time_ratio)
        assert a.energy_ratio == pytest.approx(b.energy_ratio)


class TestTargetsModule:
    def test_time_ratio_models(self):
        assert targets.mysql_time_ratio(0) == 1.0
        assert targets.mysql_time_ratio(5) == pytest.approx(1.0526, abs=1e-3)
        assert targets.commercial_time_ratio(0) == pytest.approx(1.0)
        assert targets.commercial_time_ratio(5) == pytest.approx(
            1.0316, abs=1e-3
        )
        # commercial stretches less than CPU-bound at every level
        for pct in (5, 10, 15):
            assert (
                targets.commercial_time_ratio(pct)
                < targets.mysql_time_ratio(pct)
            )

    def test_energy_targets_consistent_with_headlines(self):
        assert targets.energy_ratio_target(
            "commercial", "medium", 5
        ) == pytest.approx(0.51, abs=0.01)
        assert targets.energy_ratio_target(
            "mysql", "medium", 5
        ) == pytest.approx(0.80, abs=0.01)

    def test_qed_points_shape(self):
        batches = sorted(targets.QED_POINTS)
        energies = [targets.QED_POINTS[n][0] for n in batches]
        responses = [targets.QED_POINTS[n][1] for n in batches]
        assert energies == sorted(energies, reverse=True)
        assert responses == sorted(responses, reverse=True)

    def test_table1_rows_increasing(self):
        watts = [row.watts for row in targets.TABLE1_ROWS]
        assert watts == sorted(watts)


class TestAggregatorIdempotence:
    @given(batch=st.lists(
        st.integers(min_value=1, max_value=50),
        min_size=1, max_size=8, unique=True,
    ))
    def test_merge_sql_reparses_to_same_structure(self, batch):
        queries = [selection_query(q) for q in batch]
        merged = merge_queries(queries)
        remerged = merge_queries([merged.sql])
        # Re-merging the merged query keeps the same disjuncts.
        assert remerged.select.where == merged.select.where


@pytest.fixture(scope="module")
def mysql_db():
    # Local lightweight fixture: lineitem only, smaller than conftest's.
    from repro.db.profiles import mysql_profile
    from repro.workloads.tpch.generator import tpch_database

    return tpch_database(0.005, mysql_profile(), seed=1,
                         tables=["lineitem"])
