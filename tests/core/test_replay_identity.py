"""Execute-once / replay-many regressions.

The replay pipeline (plan cache + execution cache + vectorized trace
playback) must be numerically indistinguishable from the naive
re-execute-everything path, and its caches must invalidate correctly on
catalog and buffer-pool changes.
"""

import pytest

from repro.core.pvc.sweep import PvcSweep
from repro.db.engine import Database
from repro.db.profiles import commercial_profile, mysql_profile
from repro.db.schema import ColumnDef, TableSchema
from repro.db.types import DataType
from repro.measurement.protocol import MeasurementProtocol
from repro.workloads.runner import WorkloadRunner
from repro.workloads.selection import selection_query

REL = 1e-9


def _assert_curves_match(naive, replayed):
    assert len(naive.all_points) == len(replayed.all_points)
    for a, b in zip(naive.all_points, replayed.all_points):
        assert a.setting == b.setting
        assert b.time_s == pytest.approx(a.time_s, rel=REL)
        assert b.energy_j == pytest.approx(a.energy_j, rel=REL)


class TestSweepReplayIdentity:
    QUERIES = [selection_query(1), selection_query(2), selection_query(1)]

    def test_full_sweep_matches_naive_path(self, mysql_db, sut):
        naive = PvcSweep(
            WorkloadRunner(mysql_db, sut), self.QUERIES, replay=False
        ).run()
        replayed = PvcSweep(
            WorkloadRunner(mysql_db, sut), self.QUERIES, replay=True
        ).run()
        _assert_curves_match(naive, replayed)

    def test_full_sweep_matches_on_disk_engine(self, commercial_db, sut):
        naive = PvcSweep(
            WorkloadRunner(commercial_db, sut), self.QUERIES, replay=False
        ).run()
        replayed = PvcSweep(
            WorkloadRunner(commercial_db, sut), self.QUERIES, replay=True
        ).run()
        _assert_curves_match(naive, replayed)

    def test_protocol_sweep_matches_naive_path(self, mysql_db, sut):
        naive = PvcSweep(
            WorkloadRunner(mysql_db, sut), self.QUERIES,
            protocol=MeasurementProtocol(runs=5, noise_sigma=0.01, seed=11),
            replay=False,
        ).run()
        replayed = PvcSweep(
            WorkloadRunner(mysql_db, sut), self.QUERIES,
            protocol=MeasurementProtocol(runs=5, noise_sigma=0.01, seed=11),
            replay=True,
        ).run()
        _assert_curves_match(naive, replayed)

    def test_replay_matches_historical_pipeline_on_cold_disk_db(self, sut):
        """On a cold disk engine the full re-execute protocol measures
        buffer-pool warm-up, so the meaningful identity is against the
        historical pipeline (execute once per point, reuse repeats) --
        replay must reproduce it exactly, first cold execution included."""
        from repro.workloads.tpch.generator import tpch_database

        queries = [selection_query(1), selection_query(2)]
        protocol_kwargs = dict(runs=5, noise_sigma=0.01, seed=3)

        def cold_db():
            return tpch_database(
                0.002, commercial_profile(0.002), seed=0,
                tables=["lineitem"],
            )

        historical = PvcSweep(
            WorkloadRunner(cold_db(), sut), queries,
            protocol=MeasurementProtocol(**protocol_kwargs),
            replay=False, rerun_repeats=False,
        ).run()
        replayed = PvcSweep(
            WorkloadRunner(cold_db(), sut), queries,
            protocol=MeasurementProtocol(**protocol_kwargs),
            replay=True,
        ).run()
        _assert_curves_match(historical, replayed)

    def test_replay_sweep_executes_each_distinct_query_once(
        self, mysql_db, sut
    ):
        runner = WorkloadRunner(mysql_db, sut)
        PvcSweep(runner, self.QUERIES, replay=True).run()
        # 7 settings x 3 queries = 21 replays, but only 2 distinct
        # statements ever hit the database.
        assert runner.execution_cache_misses == 2
        assert runner.execution_cache_hits == 7 * 3 - 2


def _tiny_db(profile) -> Database:
    db = Database(profile)
    db.create_table(
        TableSchema("t", [
            ColumnDef("k", DataType.INT64),
            ColumnDef("v", DataType.FLOAT64),
        ]),
        {"k": [1, 2, 3, 4], "v": [10.0, 20.0, 30.0, 40.0]},
    )
    return db


class TestPlanCacheInvalidation:
    SQL = "SELECT k, SUM(v) AS s FROM t GROUP BY k ORDER BY k"

    def test_repeated_statements_plan_once(self):
        db = _tiny_db(mysql_profile())
        db.execute(self.SQL)
        misses = db.plan_cache_misses
        db.execute(self.SQL)
        db.execute(self.SQL)
        assert db.plan_cache_misses == misses
        assert db.plan_cache_hits >= 2

    def test_drop_and_recreate_invalidates_plan(self):
        db = _tiny_db(mysql_profile())
        before = db.execute(self.SQL).rows()
        db.drop_table("t")
        db.create_table(
            TableSchema("t", [
                ColumnDef("k", DataType.INT64),
                ColumnDef("v", DataType.FLOAT64),
            ]),
            {"k": [7], "v": [70.0]},
        )
        after = db.execute(self.SQL).rows()
        assert before != after
        assert after == [(7, 70.0)]

    def test_ast_queries_bypass_cache(self):
        db = _tiny_db(mysql_profile())
        from repro.db.sql.parser import parse

        db.plan(parse(self.SQL))
        assert self.SQL not in db._plan_cache

    def test_plan_cache_can_be_disabled(self):
        db = _tiny_db(mysql_profile())
        db.plan_cache_enabled = False
        db.execute(self.SQL)
        db.execute(self.SQL)
        assert self.SQL not in db._plan_cache
        assert db.plan_cache_hits == 0
        assert db.executions == 2


class TestExecutionCacheInvalidation:
    SQL = "SELECT k, v FROM t WHERE v > 15"

    def test_ddl_invalidates_cached_execution(self, sut):
        db = _tiny_db(mysql_profile())
        runner = WorkloadRunner(db, sut)
        first = runner.cached_execution(self.SQL)
        assert runner.cached_execution(self.SQL) is first
        db.drop_table("t")
        db.create_table(
            TableSchema("t", [
                ColumnDef("k", DataType.INT64),
                ColumnDef("v", DataType.FLOAT64),
            ]),
            {"k": [9, 10], "v": [90.0, 100.0]},
        )
        fresh = runner.cached_execution(self.SQL)
        assert fresh is not first
        assert fresh.result.row_count == 2

    def test_cold_trace_cache_converges_to_steady_state(self, sut):
        """Executing on a cold disk engine warms the pool; the page
        loads bump the generation, so the cached cold trace is replayed
        at most once and the cache settles on the warm trace."""
        db = _tiny_db(commercial_profile(0.001))
        runner = WorkloadRunner(db, sut)
        cold = runner.cached_execution(self.SQL)
        second = runner.cached_execution(self.SQL)
        assert second is not cold  # page loads invalidated the entry
        assert (
            second.trace.total_disk_bytes < cold.trace.total_disk_bytes
        )
        third = runner.cached_execution(self.SQL)
        assert third is second  # steady state: stable generation

    def test_cool_invalidates_disk_engine_traces(self, sut):
        db = _tiny_db(commercial_profile(0.001))
        runner = WorkloadRunner(db, sut)
        db.warm()
        warm_exec = runner.cached_execution(self.SQL)
        assert runner.cached_execution(self.SQL) is warm_exec
        db.cool()
        cold_exec = runner.cached_execution(self.SQL)
        assert cold_exec is not warm_exec
        # The cold run re-reads pages the warm run found in the pool.
        assert (
            cold_exec.trace.total_disk_bytes
            > warm_exec.trace.total_disk_bytes
        )

    def test_replay_matches_per_query_measurements(self, mysql_db, sut):
        queries = [selection_query(5), selection_query(6)]
        naive = WorkloadRunner(mysql_db, sut).run_queries(queries)
        replayed = WorkloadRunner(mysql_db, sut).replay_queries(queries)
        assert replayed.duration_s == pytest.approx(
            naive.duration_s, rel=REL
        )
        for a, b in zip(naive.per_query, replayed.per_query):
            assert b.duration_s == pytest.approx(a.duration_s, rel=REL)
            assert b.cpu_joules == pytest.approx(a.cpu_joules, rel=REL)
