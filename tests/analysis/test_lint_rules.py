"""Per-rule fixtures: each rule fires exactly once on its positive
fixture, stays silent on the guarded/clean variant, and round-trips
through a reasoned ``# repro: noqa[RULE-ID]: ...`` suppression."""

from __future__ import annotations

import pytest

from repro.analysis.engine import Linter
from repro.analysis.rules.determinism import (
    FloatEqRule,
    RngRule,
    SetOrderRule,
    WallClockRule,
)
from repro.analysis.rules.lock_store import LockStoreRule
from repro.analysis.rules.obs_guard import ObsGuardRule

FIXTURE_PATH = "src/repro/fixture.py"


def _lint(rule, source: str):
    linter = Linter(rules=[rule], respect_scopes=False)
    return linter.lint_source(source, FIXTURE_PATH)


WALLCLOCK_BAD = """\
import time


def stamp():
    return time.time()
"""

WALLCLOCK_OK = """\
def stamp(clock_s: float):
    return clock_s
"""

RNG_BAD = """\
import numpy as np


def draw():
    return np.random.default_rng().integers(10)
"""

RNG_OK = """\
import numpy as np


def draw(seed: int):
    return np.random.default_rng(seed).integers(10)
"""

SETORDER_BAD = """\
def walk(items):
    seen = set(items)
    out = []
    for item in seen:
        out.append(item)
    return out
"""

SETORDER_OK = """\
def walk(items):
    seen = set(items)
    out = []
    for item in sorted(seen):
        out.append(item)
    return out
"""

OBSGUARD_BAD = """\
def step(tracer, t_s):
    tracer.instant("step", "master", t_s)
"""

OBSGUARD_OK = """\
def step(tracer, t_s):
    tracing = tracer.enabled
    if tracing:
        tracer.instant("step", "master", t_s)
"""

LOCKSTORE_BAD = """\
class Store:
    def __init__(self, rows_path):
        self.rows_path = rows_path

    def _writer_lock(self):
        return None

    def sneaky(self, row):
        with open(self.rows_path, "ab") as fh:
            fh.write(row)
"""

LOCKSTORE_OK = """\
class Store:
    def __init__(self, rows_path):
        self.rows_path = rows_path

    def _writer_lock(self):
        return None

    def put(self, row):
        with self._writer_lock():
            self._append(row)

    def _append(self, row):
        with open(self.rows_path, "ab") as fh:
            fh.write(row)
"""

FLOATEQ_BAD = """\
def same(total_j: float, expected_joules: float) -> bool:
    return total_j == expected_joules
"""

FLOATEQ_OK = """\
def same(total_j: float, expected_joules: float) -> bool:
    return abs(total_j - expected_joules) <= 1e-9
"""

CASES = [
    (WallClockRule, "DET-WALLCLOCK", WALLCLOCK_BAD, WALLCLOCK_OK),
    (RngRule, "DET-RNG", RNG_BAD, RNG_OK),
    (SetOrderRule, "DET-SETORDER", SETORDER_BAD, SETORDER_OK),
    (ObsGuardRule, "OBS-GUARD", OBSGUARD_BAD, OBSGUARD_OK),
    (LockStoreRule, "LOCK-STORE", LOCKSTORE_BAD, LOCKSTORE_OK),
    (FloatEqRule, "FLOAT-EQ", FLOATEQ_BAD, FLOATEQ_OK),
]

IDS = [case[1] for case in CASES]


@pytest.mark.parametrize("rule_cls,rule_id,bad,ok", CASES, ids=IDS)
class TestRuleFixtures:
    def test_fires_exactly_once(self, rule_cls, rule_id, bad, ok):
        findings = _lint(rule_cls(), bad)
        assert [f.rule_id for f in findings] == [rule_id]
        assert findings[0].path == FIXTURE_PATH
        assert findings[0].line >= 1

    def test_clean_variant_is_silent(self, rule_cls, rule_id, bad, ok):
        assert _lint(rule_cls(), ok) == []

    def test_noqa_suppresses_with_reason(self, rule_cls, rule_id, bad, ok):
        finding = _lint(rule_cls(), bad)[0]
        lines = bad.splitlines()
        idx = finding.line - 1
        lines[idx] += f"  # repro: noqa[{rule_id}]: fixture exception"
        assert _lint(rule_cls(), "\n".join(lines) + "\n") == []

    def test_noqa_for_other_rule_does_not_suppress(
        self, rule_cls, rule_id, bad, ok,
    ):
        finding = _lint(rule_cls(), bad)[0]
        lines = bad.splitlines()
        idx = finding.line - 1
        lines[idx] += "  # repro: noqa[NO-SUCH-RULE]: wrong id"
        findings = _lint(rule_cls(), "\n".join(lines) + "\n")
        assert rule_id in {f.rule_id for f in findings}


class TestWallClockScope:
    def test_perf_module_is_exempt(self):
        linter = Linter(rules=[WallClockRule()])
        findings = linter.lint_source(
            WALLCLOCK_BAD, "src/repro/measurement/perf.py"
        )
        assert findings == []

    def test_benchmarks_are_exempt(self):
        linter = Linter(rules=[WallClockRule()])
        findings = linter.lint_source(
            WALLCLOCK_BAD, "benchmarks/bench_cluster.py"
        )
        assert findings == []

    def test_from_import_is_flagged(self):
        src = "from time import perf_counter\n"
        findings = _lint(WallClockRule(), src)
        assert [f.rule_id for f in findings] == ["DET-WALLCLOCK"]


class TestRngDetails:
    def test_stdlib_random_import_is_flagged(self):
        findings = _lint(RngRule(), "import random\n")
        assert [f.rule_id for f in findings] == ["DET-RNG"]

    def test_legacy_numpy_global_is_flagged(self):
        src = (
            "import numpy as np\n\n\n"
            "def draw():\n"
            "    return np.random.rand(3)\n"
        )
        findings = _lint(RngRule(), src)
        assert [f.rule_id for f in findings] == ["DET-RNG"]


class TestObsGuardHelpers:
    HELPER_OK = """\
def _emit(tracer, t_s):
    tracer.instant("tick", "master", t_s)


def step(tracer, t_s):
    tracing = tracer.enabled
    if tracing:
        _emit(tracer, t_s)
"""

    HELPER_BAD = """\
def _emit(tracer, t_s):
    tracer.instant("tick", "master", t_s)


def step(tracer, t_s):
    _emit(tracer, t_s)
"""

    def test_helper_guarded_at_every_call_site_passes(self):
        assert _lint(ObsGuardRule(), self.HELPER_OK) == []

    def test_helper_with_unguarded_call_site_fires(self):
        findings = _lint(ObsGuardRule(), self.HELPER_BAD)
        assert [f.rule_id for f in findings] == ["OBS-GUARD"]

    def test_metrics_none_guard_passes(self):
        src = """\
def step(metrics, value):
    if metrics is not None:
        metrics.observe("tick", value)
"""
        assert _lint(ObsGuardRule(), src) == []
