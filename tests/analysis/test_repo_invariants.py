"""The analyzer against the real tree.

Three layers: the shipped sources must lint clean (so CI's analysis
substage stays green), seeded violations injected into the actual
hot-path modules must be caught (so the rules bite where it matters),
and the run-id fingerprint must survive hash randomization (the
invariant DET-SETORDER exists to protect)."""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis.engine import Linter, SEVERITY_ERROR

REPO_ROOT = Path(__file__).resolve().parents[2]
SIMULATOR = REPO_ROOT / "src" / "repro" / "cluster" / "simulator.py"
TRACE_STORE = REPO_ROOT / "src" / "repro" / "hardware" / "trace_store.py"


def _ids(findings):
    return {f.rule_id for f in findings}


class TestRepoIsClean:
    def test_src_lints_with_zero_errors(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        findings = Linter().lint_paths(["src"])
        errors = [f for f in findings if f.severity == SEVERITY_ERROR]
        assert errors == [], "\n".join(f.render() for f in errors)

    def test_scripts_and_benchmarks_lint_with_zero_errors(
        self, monkeypatch,
    ):
        monkeypatch.chdir(REPO_ROOT)
        findings = Linter().lint_paths(
            ["scripts", "benchmarks", "examples"]
        )
        errors = [f for f in findings if f.severity == SEVERITY_ERROR]
        assert errors == [], "\n".join(f.render() for f in errors)


class TestSeededViolations:
    """Append a violation to the real module source and assert the
    matching rule fires -- the acceptance check for the CI lint gate."""

    def test_wallclock_in_simulator_is_caught(self):
        source = SIMULATOR.read_text() + textwrap.dedent("""\


            def _seeded_wallclock():
                import time
                return time.time()
        """)
        findings = Linter().lint_source(
            source, "src/repro/cluster/simulator.py"
        )
        assert "DET-WALLCLOCK" in _ids(findings)

    def test_unguarded_hook_in_simulator_is_caught(self):
        source = SIMULATOR.read_text() + textwrap.dedent("""\


            def _seeded_unguarded(tracer, metrics, t_s):
                tracer.instant("seed", "master", t_s)
                metrics.observe("seed", t_s)
        """)
        findings = Linter().lint_source(
            source, "src/repro/cluster/simulator.py"
        )
        obs = [f for f in findings if f.rule_id == "OBS-GUARD"]
        assert len(obs) == 2, [f.render() for f in findings]

    def test_out_of_lock_write_in_trace_store_is_caught(self):
        source = TRACE_STORE.read_text() + textwrap.dedent("""\


            def _seeded_unlocked_write(store, payload):
                with open(store.rows_path, "ab") as fh:
                    fh.write(payload)
        """)
        findings = Linter().lint_source(
            source, "src/repro/hardware/trace_store.py"
        )
        assert "LOCK-STORE" in _ids(findings)

    def test_pristine_sources_have_no_errors(self):
        linter = Linter()
        for path in (SIMULATOR, TRACE_STORE):
            display = path.relative_to(REPO_ROOT).as_posix()
            findings = linter.lint_source(path.read_text(), display)
            errors = [
                f for f in findings if f.severity == SEVERITY_ERROR
            ]
            assert errors == [], "\n".join(f.render() for f in errors)


RUN_ID_SNIPPET = """\
from repro.cluster.node import uniform_fleet
from repro.cluster.routing import RoundRobinRouter
from repro.obs.fingerprint import config_fingerprint, run_id_for
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.selection import selection_workload

queries = selection_workload(6).queries
stream = poisson_arrivals(
    [queries[i % 6] for i in range(30)], 0.05, seed=1
)
fp = config_fingerprint(
    uniform_fleet(4), RoundRobinRouter(), arrivals=stream,
    workload_class="selection", scale_factor=0.01,
)
print(run_id_for(fp))
"""


class TestRunIdDeterminism:
    def test_run_id_stable_across_hash_seeds(self):
        """Regression pin: the canonical fingerprint's run id must not
        depend on interpreter hash randomization (set/dict ordering)."""
        ids = set()
        for hash_seed in ("0", "1", "31337"):
            env = dict(os.environ)
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            env["PYTHONHASHSEED"] = hash_seed
            proc = subprocess.run(
                [sys.executable, "-c", RUN_ID_SNIPPET],
                env=env, capture_output=True, text=True,
            )
            assert proc.returncode == 0, proc.stderr
            ids.add(proc.stdout.strip())
        assert len(ids) == 1, ids
