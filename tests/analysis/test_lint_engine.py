"""Engine-level behavior: the noqa policy, output formats, and the
``python -m repro lint`` entry point's exit codes."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.engine import (
    Linter,
    NOQA_BLANKET_ID,
    NOQA_REASON_ID,
    NOQA_UNKNOWN_ID,
    NOQA_UNUSED_ID,
    PARSE_ID,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    render_json,
    rule_catalog,
)
from repro.analysis.rules.determinism import WallClockRule

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURE_PATH = "src/repro/fixture.py"

VIOLATION = """\
import time


def stamp():
    return time.time()
"""


def _lint(source: str, path: str = FIXTURE_PATH):
    linter = Linter(rules=[WallClockRule()], respect_scopes=False)
    return linter.lint_source(source, path)


def _ids(findings):
    return [f.rule_id for f in findings]


class TestNoqaPolicy:
    def test_blanket_noqa_is_an_error(self):
        src = VIOLATION.replace(
            "return time.time()",
            "return time.time()  # repro: noqa",
        )
        findings = _lint(src)
        assert NOQA_BLANKET_ID in _ids(findings)
        # A blanket noqa suppresses nothing: the violation survives.
        assert "DET-WALLCLOCK" in _ids(findings)

    def test_noqa_without_reason_is_an_error(self):
        src = VIOLATION.replace(
            "return time.time()",
            "return time.time()  # repro: noqa[DET-WALLCLOCK]",
        )
        findings = _lint(src)
        assert NOQA_REASON_ID in _ids(findings)

    def test_unknown_rule_id_is_an_error(self):
        src = "x = 1  # repro: noqa[NOT-A-RULE]: whatever\n"
        findings = _lint(src)
        assert _ids(findings) == [NOQA_UNKNOWN_ID]

    def test_unused_noqa_is_a_warning(self):
        src = "x = 1  # repro: noqa[DET-WALLCLOCK]: nothing here\n"
        findings = _lint(src)
        assert _ids(findings) == [NOQA_UNUSED_ID]
        assert findings[0].severity == SEVERITY_WARNING

    def test_noqa_inside_string_literal_is_ignored(self):
        src = 's = "# repro: noqa[DET-WALLCLOCK]: not a comment"\n'
        assert _lint(src) == []

    def test_syntax_error_yields_parse_finding(self):
        findings = _lint("def broken(:\n")
        assert _ids(findings) == [PARSE_ID]
        assert findings[0].severity == SEVERITY_ERROR


class TestJsonOutput:
    def test_document_schema(self):
        findings = _lint(VIOLATION)
        doc = json.loads(render_json(findings, files=1, paths=["src"]))
        assert doc["format"] == "repro-lint"
        assert doc["version"] == 1
        assert doc["paths"] == ["src"]
        assert doc["files"] == 1
        assert doc["counts"] == {"errors": 1, "warnings": 0}
        assert set(doc["rules"]) >= {
            "DET-WALLCLOCK", "DET-RNG", "DET-SETORDER",
            "OBS-GUARD", "LOCK-STORE", "FLOAT-EQ",
        }
        (entry,) = doc["findings"]
        assert entry["rule"] == "DET-WALLCLOCK"
        assert entry["path"] == FIXTURE_PATH
        assert entry["severity"] == SEVERITY_ERROR
        assert isinstance(entry["line"], int)
        assert isinstance(entry["col"], int)
        assert entry["message"]

    def test_catalog_entries_carry_invariants(self):
        catalog = rule_catalog()
        for rule_id, info in catalog.items():
            assert info["severity"] in (SEVERITY_ERROR, SEVERITY_WARNING)
            assert info["invariant"], rule_id


class TestCliExitCodes:
    def _run(self, *args: str, cwd: Path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *args],
            cwd=cwd, env=env, capture_output=True, text=True,
        )

    def test_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        proc = self._run("ok.py", cwd=tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_violation_exits_one(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(VIOLATION)
        proc = self._run("src", cwd=tmp_path)
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "DET-WALLCLOCK" in proc.stdout

    def test_missing_path_exits_two(self, tmp_path):
        proc = self._run("no/such/dir", cwd=tmp_path)
        assert proc.returncode == 2

    def test_json_format_is_parseable(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(VIOLATION)
        proc = self._run("--format", "json", "src", cwd=tmp_path)
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["format"] == "repro-lint"
        assert doc["counts"]["errors"] == 1
