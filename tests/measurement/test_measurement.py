"""Measurement protocol, instrument panel, and comparison tables."""

import pytest

from repro.hardware.system import CPU_BOUND
from repro.hardware.trace import CpuWork, Idle, Trace
from repro.measurement.meter import InstrumentPanel
from repro.measurement.protocol import (
    MeasurementProtocol,
    combine_measurements,
    exact_protocol,
)
from repro.measurement.report import ComparisonTable


class TestProtocol:
    def test_noise_free_returns_exact(self, sut):
        run = sut.run(Trace([CpuWork(3e9, 1.0)]), CPU_BOUND)
        sample = exact_protocol().measure(lambda: run)
        assert sample.cpu_joules == pytest.approx(run.cpu_joules)
        assert sample.duration_s == pytest.approx(run.duration_s)

    def test_trimmed_mean_near_truth(self, sut):
        run = sut.run(Trace([CpuWork(3e10, 1.0)]), CPU_BOUND)
        protocol = MeasurementProtocol(runs=5, noise_sigma=0.02, seed=1)
        sample = protocol.measure(lambda: run)
        assert sample.cpu_joules == pytest.approx(run.cpu_joules, rel=0.05)
        assert sample.runs == 5

    def test_deterministic_given_seed(self, sut):
        run = sut.run(Trace([CpuWork(3e9, 1.0)]), CPU_BOUND)
        a = MeasurementProtocol(seed=9).measure(lambda: run)
        b = MeasurementProtocol(seed=9).measure(lambda: run)
        assert a.cpu_joules == b.cpu_joules

    def test_trim_drops_extremes(self):
        protocol = MeasurementProtocol(runs=5, noise_sigma=0.0)
        assert protocol._trimmed_mean([1.0, 100.0, 3.0, 2.0, -50.0]) == \
            pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MeasurementProtocol(runs=0)
        with pytest.raises(ValueError):
            MeasurementProtocol(runs=3, drop_extremes=2)
        with pytest.raises(ValueError):
            MeasurementProtocol(noise_sigma=-0.1)

    def test_combine_measurements(self, sut):
        a = sut.run(Trace([CpuWork(1e9, 1.0)]), CPU_BOUND)
        b = sut.run(Trace([Idle(1.0)]), CPU_BOUND)
        total = combine_measurements([a, b])
        assert total.duration_s == pytest.approx(
            a.duration_s + b.duration_s
        )
        empty = combine_measurements([])
        assert empty.duration_s == 0.0


class TestInstrumentPanel:
    def test_reading_fields(self, sut):
        run = sut.run(Trace([CpuWork(9e9, 1.0)]), CPU_BOUND)
        reading = InstrumentPanel().read(run)
        assert reading.exact_cpu_joules == pytest.approx(run.cpu_joules)
        assert reading.wall_joules == pytest.approx(run.wall_joules)
        assert reading.disk_joules == pytest.approx(run.disk_joules)
        assert abs(reading.epu_error) < 0.05


class TestComparisonTable:
    def test_errors(self):
        table = ComparisonTable("demo")
        table.add("a", 10.0, 11.0)
        table.add("b", None, 5.0)
        assert table.rows[0].error == pytest.approx(0.1)
        assert table.rows[1].error is None
        assert table.max_abs_error() == pytest.approx(0.1)

    def test_render_contains_values(self):
        table = ComparisonTable("demo")
        table.add("metric one", 2.0, 1.9, unit="J")
        text = table.render()
        assert "demo" in text
        assert "metric one" in text
        assert "-5.0%" in text
