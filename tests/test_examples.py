"""Smoke tests: every example script runs end to end at a tiny SF."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

SCRIPTS = [
    "quickstart.py",
    "pvc_sla_advisor.py",
    "qed_batching.py",
    "disk_energy_survey.py",
    "energy_aware_optimizer.py",
    "cluster_energy_policies.py",
    "diurnal_consolidation.py",
    "master_qed.py",
    "faulty_fleet.py",
    "replicated_fleet.py",
]


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script, "0.005"])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_examples_list_is_complete():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(SCRIPTS)
