"""Shared fixtures: small TPC-H databases and a calibrated machine."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.db.profiles import commercial_profile, mysql_profile

# Property tests share session-scoped database fixtures (cheap, frozen)
# and occasionally exceed the default 200 ms deadline on loaded CI
# machines; disable the flakiness sources globally.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
settings.load_profile("repro")
from repro.hardware.profiles import paper_sut
from repro.workloads.tpch.generator import generate_tpch, tpch_database
from repro.workloads.tpch.queries import Q5_TABLES

SMALL_SF = 0.01


@pytest.fixture(scope="session")
def tpch_tables():
    """Raw generated tables at SF 0.01 (read-only; do not mutate)."""
    return generate_tpch(SMALL_SF, seed=0)


@pytest.fixture(scope="session")
def mysql_db():
    """Memory-engine TPC-H database at SF 0.01."""
    return tpch_database(SMALL_SF, mysql_profile(), seed=0)


@pytest.fixture(scope="session")
def commercial_db():
    """Disk-engine TPC-H database at SF 0.01, warmed."""
    db = tpch_database(
        SMALL_SF, commercial_profile(SMALL_SF), seed=0, tables=Q5_TABLES
    )
    db.warm()
    return db


@pytest.fixture()
def sut():
    """A fresh calibrated system under test (stock setting)."""
    return paper_sut()
