"""End-to-end integration: the full pipelines users would run.

These tests wire whole scenarios together -- arrival queue through
aggregation, execution, split, and energy accounting; sweep through
advisor prediction and verification -- complementing the per-module
unit tests.
"""

import numpy as np
import pytest

from repro.core.pvc.advisor import OperatingPointAdvisor, Sla
from repro.core.pvc.sweep import PvcSweep
from repro.core.qed.aggregator import merge_queries
from repro.core.qed.executor import QedExecutor
from repro.core.qed.policy import BatchPolicy
from repro.core.qed.queue import QueryQueue
from repro.core.qed.splitter import split_result
from repro.hardware.cpu import STOCK_SETTING
from repro.workloads.runner import WorkloadRunner
from repro.workloads.selection import selection_query
from repro.workloads.tpch.queries import q5_paper_workload


class TestQueueToSplitPipeline:
    def test_arrival_stream_round_trip(self, mysql_db, sut):
        """Queue -> batch -> merge -> execute -> split: every arriving
        query gets exactly the rows it would have gotten alone."""
        rng = np.random.default_rng(3)
        quantities = [int(q) for q in rng.permutation(50)[:30] + 1]
        queue = QueryQueue(BatchPolicy(threshold=10))
        batches = []
        now = 0.0
        for quantity in quantities:
            now += 1.0
            batch = queue.submit(selection_query(quantity), now)
            if batch is not None:
                batches.append(batch)
        assert len(batches) == 3

        for batch in batches:
            merged = merge_queries(batch.sqls)
            result = mysql_db.execute(merged.sql)
            outcome = split_result(merged, result)
            assert outcome.unmatched_rows == 0
            for sql, part in zip(batch.sqls, outcome.results):
                direct = mysql_db.execute(sql)
                assert part.row_count == direct.row_count
                assert sorted(part.rows()) == sorted(direct.rows())

    def test_qed_energy_accounting_consistent(self, mysql_db, sut):
        """The comparison's ratios agree with its raw outcomes."""
        executor = QedExecutor(WorkloadRunner(mysql_db, sut))
        queries = [selection_query(q) for q in range(1, 16)]
        comparison = executor.compare(queries)
        assert comparison.energy_ratio == pytest.approx(
            comparison.batched.cpu_joules
            / comparison.sequential.cpu_joules
        )
        assert comparison.response_ratio == pytest.approx(
            comparison.batched.total_time_s
            / comparison.sequential.avg_response_s
        )
        assert comparison.edp_ratio == pytest.approx(
            comparison.energy_ratio * comparison.response_ratio
        )


class TestSweepToAdvisorPipeline:
    def test_advisor_prediction_verifies(self, mysql_db, sut):
        """Applying the advised setting reproduces the curve's numbers
        (the sweep is an honest predictor for the same workload)."""
        runner = WorkloadRunner(mysql_db, sut)
        queries = q5_paper_workload()[:2]
        curve = PvcSweep(runner, queries).run()
        advisor = OperatingPointAdvisor(curve)
        chosen = advisor.choose(Sla(max_time_increase=0.06))
        assert chosen.setting is not None
        assert not chosen.setting.is_stock

        sut.apply_setting(chosen.setting)
        verification = runner.run_queries(queries).total
        sut.apply_setting(STOCK_SETTING)
        assert verification.cpu_joules == pytest.approx(
            chosen.energy_j, rel=1e-6
        )
        assert verification.duration_s == pytest.approx(
            chosen.time_s, rel=1e-6
        )

    def test_sweep_deterministic(self, mysql_db, sut):
        runner = WorkloadRunner(mysql_db, sut)
        queries = [selection_query(1)]
        a = PvcSweep(runner, queries).run()
        b = PvcSweep(runner, queries).run()
        for pa, pb in zip(a.all_points, b.all_points):
            assert pa.energy_j == pytest.approx(pb.energy_j)
            assert pa.time_s == pytest.approx(pb.time_s)


class TestCrossEngineConsistency:
    def test_same_query_same_answer_on_both_engines(
        self, mysql_db, commercial_db
    ):
        """Storage engine changes cost, never semantics."""
        sql = ("SELECT n_name, COUNT(*) AS n "
               "FROM nation, region "
               "WHERE n_regionkey = r_regionkey AND r_name = 'ASIA' "
               "GROUP BY n_name ORDER BY n_name")
        assert (
            mysql_db.execute(sql).rows()
            == commercial_db.execute(sql).rows()
        )

    def test_commercial_costs_more_wall_time_via_io(
        self, mysql_db, commercial_db, sut
    ):
        """The commercial profile's stall/temp-I/O terms stretch wall
        time relative to the pure-CPU memory engine for the same scan
        volume (with fewer CPU cycles per row)."""
        sql = selection_query(1)
        mysql_run = WorkloadRunner(mysql_db, sut).execute_query(sql)
        comm_run = WorkloadRunner(commercial_db, sut).execute_query(sql)
        mysql_m = sut.run(mysql_run.trace, mysql_db.workload_class)
        comm_m = sut.run(comm_run.trace, commercial_db.workload_class)
        assert comm_m.avg_cpu_power_w < mysql_m.avg_cpu_power_w
