"""TPC-H generator: determinism, integrity, cardinalities, queries."""

import numpy as np
import pytest

from repro.workloads.tpch import schema as sch
from repro.workloads.tpch.generator import (
    generate_lineitem,
    generate_orders,
    generate_tpch,
)
from repro.workloads.tpch.queries import (
    Q5_TABLES,
    q1,
    q3,
    q5,
    q5_paper_workload,
    q6,
)


class TestGeneratorShape:
    def test_cardinalities(self, tpch_tables):
        sf = 0.01
        assert tpch_tables["region"].row_count == 5
        assert tpch_tables["nation"].row_count == 25
        assert tpch_tables["supplier"].row_count == 100
        assert tpch_tables["customer"].row_count == 1500
        assert tpch_tables["orders"].row_count == 15_000
        assert tpch_tables["part"].row_count == 2000
        assert tpch_tables["partsupp"].row_count == 8000
        # ~4 lines per order on average
        ratio = (
            tpch_tables["lineitem"].row_count
            / tpch_tables["orders"].row_count
        )
        assert 3.5 < ratio < 4.5

    def test_determinism(self, tpch_tables):
        again = generate_tpch(0.01, seed=0)
        for name, table in tpch_tables.items():
            other = again[name]
            assert other.row_count == table.row_count
            for col in table.schema.column_names:
                assert np.array_equal(
                    other.column(col).raw(), table.column(col).raw()
                ), f"{name}.{col}"

    def test_seed_changes_data(self):
        a = generate_tpch(0.01, seed=0, tables=["orders"])["orders"]
        b = generate_tpch(0.01, seed=1, tables=["orders"])["orders"]
        assert not np.array_equal(
            a.column("o_custkey").raw(), b.column("o_custkey").raw()
        )

    def test_restricted_tables(self):
        only = generate_tpch(0.01, tables=["lineitem"])
        assert set(only) == {"lineitem"}

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            generate_tpch(0.0)


class TestIntegrity:
    def test_foreign_keys(self, tpch_tables):
        nation_keys = set(
            tpch_tables["nation"].column("n_nationkey").raw().tolist()
        )
        assert set(
            tpch_tables["supplier"].column("s_nationkey").raw().tolist()
        ) <= nation_keys
        assert set(
            tpch_tables["customer"].column("c_nationkey").raw().tolist()
        ) <= nation_keys
        order_keys = set(
            tpch_tables["orders"].column("o_orderkey").raw().tolist()
        )
        assert set(
            tpch_tables["lineitem"].column("l_orderkey").raw().tolist()
        ) <= order_keys
        cust_keys = set(
            tpch_tables["customer"].column("c_custkey").raw().tolist()
        )
        assert set(
            tpch_tables["orders"].column("o_custkey").raw().tolist()
        ) <= cust_keys

    def test_nation_region_assignment(self, tpch_tables):
        regions = tpch_tables["nation"].column("n_regionkey").raw()
        counts = np.bincount(regions, minlength=5)
        assert list(counts) == [5, 5, 5, 5, 5]

    def test_quantity_domain(self, tpch_tables):
        qty = tpch_tables["lineitem"].column("l_quantity").raw()
        assert qty.min() >= 1
        assert qty.max() <= sch.QUANTITY_MAX

    def test_quantity_roughly_uniform(self, tpch_tables):
        """Each value ~2% of rows: the QED workload's selectivity."""
        qty = tpch_tables["lineitem"].column("l_quantity").raw()
        counts = np.bincount(qty, minlength=51)[1:]
        fractions = counts / len(qty)
        assert fractions.min() > 0.01
        assert fractions.max() < 0.03

    def test_order_dates_in_domain(self, tpch_tables):
        from repro.db.types import date_to_days
        dates = tpch_tables["orders"].column("o_orderdate").raw()
        assert dates.min() >= date_to_days(sch.DATE_MIN)
        assert dates.max() <= date_to_days(sch.DATE_MAX)

    def test_shipdate_after_orderdate(self):
        orders = generate_orders(0.01, seed=0)
        lineitem = generate_lineitem(orders, 0.01, seed=0)
        order_dates = dict(zip(
            orders.column("o_orderkey").raw().tolist(),
            orders.column("o_orderdate").raw().tolist(),
        ))
        ship = lineitem.column("l_shipdate").raw()
        keys = lineitem.column("l_orderkey").raw()
        for i in range(0, len(ship), 997):  # sample
            assert ship[i] > order_dates[keys[i]]


class TestQueries:
    def test_paper_workload_is_ten_nonoverlapping(self):
        queries = q5_paper_workload()
        assert len(queries) == 10
        assert len(set(queries)) == 10
        assert sum("'ASIA'" in q for q in queries) == 5
        assert sum("'AMERICA'" in q for q in queries) == 5

    def test_q5_executes_and_groups_by_nation(self, mysql_db):
        result = mysql_db.execute(q5())
        assert result.names == ["n_name", "revenue"]
        assert 0 < result.row_count <= 5
        revenues = [r[1] for r in result.rows()]
        assert revenues == sorted(revenues, reverse=True)
        nations = {r[0] for r in result.rows()}
        asia = {
            sch.NATION_NAMES[i] for i in range(25)
            if sch.NATION_REGIONS[i] == 2
        }
        assert nations <= asia

    def test_q5_matches_manual_computation(self, mysql_db, tpch_tables):
        """Cross-check Q5 revenue against a pandas-free manual join."""
        result = mysql_db.execute(
            q5("ASIA", "1994-01-01", "1995-01-01")
        )
        got = {name: rev for name, rev in result.rows()}

        from repro.db.types import date_to_days
        li = tpch_tables["lineitem"]
        orders = tpch_tables["orders"]
        cust = tpch_tables["customer"]
        supp = tpch_tables["supplier"]
        nation = tpch_tables["nation"]
        lo = date_to_days("1994-01-01")
        hi = date_to_days("1995-01-01")
        o_date = dict(zip(orders.column("o_orderkey").raw().tolist(),
                          orders.column("o_orderdate").raw().tolist()))
        o_cust = dict(zip(orders.column("o_orderkey").raw().tolist(),
                          orders.column("o_custkey").raw().tolist()))
        c_nat = dict(zip(cust.column("c_custkey").raw().tolist(),
                         cust.column("c_nationkey").raw().tolist()))
        s_nat = dict(zip(supp.column("s_suppkey").raw().tolist(),
                         supp.column("s_nationkey").raw().tolist()))
        asia_nations = {
            i for i in range(25) if sch.NATION_REGIONS[i] == 2
        }
        names = nation.column("n_name")
        expected: dict[str, float] = {}
        lk = li.column("l_orderkey").raw()
        ls = li.column("l_suppkey").raw()
        lp = li.column("l_extendedprice").raw()
        ld = li.column("l_discount").raw()
        for i in range(li.row_count):
            ok = lk[i]
            if not lo <= o_date[ok] < hi:
                continue
            snat = s_nat[ls[i]]
            if snat not in asia_nations:
                continue
            if c_nat[o_cust[ok]] != snat:
                continue
            name = names.dictionary[names.data[
                np.flatnonzero(
                    tpch_tables["nation"].column("n_nationkey").raw()
                    == snat
                )[0]
            ]]
            expected[name] = expected.get(name, 0.0) + lp[i] * (1 - ld[i])
        assert set(got) == set(expected)
        for name in expected:
            assert got[name] == pytest.approx(expected[name], rel=1e-9)

    def test_q1_q3_q6_execute(self, mysql_db):
        r1 = mysql_db.execute(q1())
        assert r1.row_count >= 1
        assert "sum_qty" in r1.names
        r3 = mysql_db.execute(q3())
        assert r3.row_count <= 10
        r6 = mysql_db.execute(q6())
        assert r6.row_count == 1

    def test_q5_tables_list(self):
        assert "lineitem" in Q5_TABLES and "part" not in Q5_TABLES
