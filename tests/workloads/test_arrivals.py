"""Arrival streams and their interaction with the QED queue."""

import pytest
from hypothesis import given, strategies as st

from repro.core.qed.policy import BatchPolicy
from repro.core.qed.queue import QueryQueue
from repro.workloads.arrivals import (
    Arrival,
    RateSchedule,
    bursty_arrivals,
    diurnal_arrivals,
    diurnal_schedule,
    drain_through_queue,
    merge_arrivals,
    piecewise_schedule,
    poisson_arrivals,
    ramp_arrivals,
    ramp_schedule,
    rate_schedule_arrivals,
    uniform_arrivals,
)

QUERIES = [f"SELECT {i} FROM t WHERE a = {i}" for i in range(20)]


class TestStreams:
    def test_poisson_monotone_and_deterministic(self):
        a = poisson_arrivals(QUERIES, 2.0, seed=5)
        b = poisson_arrivals(QUERIES, 2.0, seed=5)
        times = [x.time_s for x in a]
        assert times == sorted(times)
        assert [x.time_s for x in b] == times

    def test_poisson_mean_roughly_right(self):
        arrivals = poisson_arrivals(QUERIES * 50, 2.0, seed=1)
        span = arrivals[-1].time_s - arrivals[0].time_s
        mean = span / (len(arrivals) - 1)
        assert mean == pytest.approx(2.0, rel=0.2)

    def test_uniform_spacing(self):
        arrivals = uniform_arrivals(QUERIES, 3.0, start_s=1.0)
        gaps = [
            b.time_s - a.time_s
            for a, b in zip(arrivals, arrivals[1:])
        ]
        assert all(g == pytest.approx(3.0) for g in gaps)
        assert arrivals[0].time_s == pytest.approx(4.0)

    def test_bursty_shape(self):
        arrivals = bursty_arrivals(QUERIES, burst_size=5,
                                   burst_gap_s=100.0)
        gaps = [
            b.time_s - a.time_s
            for a, b in zip(arrivals, arrivals[1:])
        ]
        big = [g for g in gaps if g > 1.0]
        assert len(big) == 3  # 20 queries / bursts of 5 -> 3 gaps

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(QUERIES, 0.0)
        with pytest.raises(ValueError):
            uniform_arrivals(QUERIES, -1.0)
        with pytest.raises(ValueError):
            bursty_arrivals(QUERIES, 0, 1.0)


class TestMergeArrivals:
    def test_time_ordered_merge(self):
        a = poisson_arrivals(QUERIES[:10], 2.0, seed=1)
        b = poisson_arrivals(QUERIES[10:], 3.0, seed=2)
        merged = merge_arrivals(a, b)
        times = [x.time_s for x in merged]
        assert times == sorted(times)
        assert len(merged) == len(a) + len(b)
        assert sorted(x.sql for x in merged) == sorted(
            x.sql for x in a + b
        )

    def test_stable_for_ties(self):
        a = [Arrival("a1", 1.0), Arrival("a2", 2.0)]
        b = [Arrival("b1", 1.0), Arrival("b2", 2.0)]
        merged = merge_arrivals(a, b)
        assert [x.sql for x in merged] == ["a1", "b1", "a2", "b2"]
        # Argument order decides the tie, reproducibly.
        swapped = merge_arrivals(b, a)
        assert [x.sql for x in swapped] == ["b1", "a1", "b2", "a2"]

    def test_empty_and_single_stream(self):
        a = uniform_arrivals(QUERIES[:3], 1.0)
        assert merge_arrivals(a) == a
        assert merge_arrivals([], a, []) == a
        assert merge_arrivals() == []

    def test_unsorted_stream_rejected(self):
        with pytest.raises(ValueError):
            merge_arrivals([Arrival("x", 2.0), Arrival("y", 1.0)])

    @given(seeds=st.lists(
        st.integers(min_value=0, max_value=50), min_size=1, max_size=4,
        unique=True,
    ))
    def test_merge_preserves_within_stream_order(self, seeds):
        streams = [
            poisson_arrivals(QUERIES[:5], 1.0, seed=s) for s in seeds
        ]
        merged = merge_arrivals(*streams)
        for stream in streams:
            positions = [merged.index(x) for x in stream]
            assert positions == sorted(positions)


class TestDrainThroughQueue:
    def test_threshold_batches(self):
        queue = QueryQueue(BatchPolicy(threshold=8))
        batches = drain_through_queue(
            uniform_arrivals(QUERIES, 1.0), queue
        )
        assert [b.size for b in batches] == [8, 8]
        assert len(queue) == 4  # trailing partial batch stays queued

    def test_bursts_dispatch_on_arrival(self):
        queue = QueryQueue(BatchPolicy(threshold=5))
        batches = drain_through_queue(
            bursty_arrivals(QUERIES, burst_size=5, burst_gap_s=60.0),
            queue,
        )
        assert len(batches) == 4
        # each batch completes within its burst window
        for batch in batches:
            waits = batch.queue_waits()
            assert max(waits) < 1.0

    @given(
        threshold=st.integers(min_value=1, max_value=10),
        mean=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_every_dispatched_query_arrived_before_dispatch(
        self, threshold, mean
    ):
        queue = QueryQueue(BatchPolicy(threshold=threshold))
        arrivals = poisson_arrivals(QUERIES, mean, seed=2)
        batches = drain_through_queue(arrivals, queue)
        for batch in batches:
            for queued in batch.queries:
                assert queued.arrival_s <= batch.dispatch_s


class TestLoadProfiles:
    """Time-varying load profiles (ISSUE 4 tentpole)."""

    def _diurnal(self):
        return diurnal_schedule(base_rate=2.0, peak_rate=20.0,
                                period_s=100.0, horizon_s=200.0)

    def test_diurnal_curve_shape(self):
        schedule = self._diurnal()
        assert schedule.rate_at(0.0) == pytest.approx(2.0)
        assert schedule.rate_at(50.0) == pytest.approx(20.0)
        assert schedule.rate_at(100.0) == pytest.approx(2.0)
        assert schedule.peak_rate == 20.0

    def test_ramp_curve_shape(self):
        schedule = ramp_schedule(1.0, 9.0, horizon_s=100.0)
        assert schedule.rate_at(0.0) == pytest.approx(1.0)
        assert schedule.rate_at(50.0) == pytest.approx(5.0)
        assert schedule.rate_at(100.0) == pytest.approx(9.0)
        assert schedule.expected_count() == pytest.approx(500.0, rel=1e-3)

    def test_piecewise_phases(self):
        schedule = piecewise_schedule([(10.0, 1.0), (20.0, 5.0),
                                       (10.0, 2.0)])
        assert schedule.horizon_s == 40.0
        assert schedule.rate_at(5.0) == 1.0
        assert schedule.rate_at(15.0) == 5.0
        assert schedule.rate_at(35.0) == 2.0
        assert schedule.expected_count() == pytest.approx(
            10 + 100 + 20, rel=1e-2
        )

    def test_rate_schedule_integral_matches_count(self):
        """The thinning generator's arrival count concentrates around
        the rate integral (Poisson: sigma = sqrt(N))."""
        schedule = self._diurnal()
        expected = schedule.expected_count()  # 2200
        counts = [
            len(rate_schedule_arrivals(QUERIES, schedule, seed=s))
            for s in range(5)
        ]
        mean = sum(counts) / len(counts)
        assert mean == pytest.approx(expected, rel=0.05)

    def test_seeded_determinism(self):
        schedule = self._diurnal()
        a = rate_schedule_arrivals(QUERIES, schedule, seed=3)
        b = rate_schedule_arrivals(QUERIES, schedule, seed=3)
        c = rate_schedule_arrivals(QUERIES, schedule, seed=4)
        assert a == b
        assert a != c

    def test_sorted_and_start_offset(self):
        for stream in (
            diurnal_arrivals(QUERIES, 2.0, 20.0, 50.0, 100.0,
                             start_s=7.0),
            ramp_arrivals(QUERIES, 2.0, 20.0, 100.0, start_s=7.0),
            rate_schedule_arrivals(QUERIES, self._diurnal(),
                                   start_s=7.0),
        ):
            times = [a.time_s for a in stream]
            assert times == sorted(times)
            assert all(t >= 7.0 for t in times)
            assert all(t <= 7.0 + 200.0 for t in times)

    def test_queries_cycle_in_order(self):
        stream = ramp_arrivals(QUERIES[:3], 5.0, 5.0, horizon_s=10.0,
                               seed=1)
        expected = [QUERIES[i % 3] for i in range(len(stream))]
        assert [a.sql for a in stream] == expected

    def test_merge_compatible(self):
        merged = merge_arrivals(
            diurnal_arrivals(QUERIES[:5], 1.0, 5.0, 50.0, 100.0, seed=1),
            ramp_arrivals(QUERIES[5:10], 1.0, 5.0, 100.0, seed=2),
            poisson_arrivals(QUERIES[10:], 10.0, seed=3),
        )
        times = [a.time_s for a in merged]
        assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_schedule(5.0, 2.0, 100.0, 100.0)  # base > peak
        with pytest.raises(ValueError):
            diurnal_schedule(1.0, 2.0, 0.0, 100.0)
        with pytest.raises(ValueError):
            ramp_schedule(0.0, 0.0, 100.0)
        with pytest.raises(ValueError):
            ramp_schedule(1.0, 2.0, -1.0)
        with pytest.raises(ValueError):
            piecewise_schedule([])
        with pytest.raises(ValueError):
            piecewise_schedule([(0.0, 1.0)])
        with pytest.raises(ValueError):
            RateSchedule(rate=lambda t: 1.0, peak_rate=0.0,
                         horizon_s=1.0)


class TestEmptyStreamNormalization:
    """All generators accept an empty queries list uniformly and
    return sorted, start-offset-respecting streams (ISSUE 4 bugfix)."""

    def test_every_generator_returns_empty_stream(self):
        schedule = ramp_schedule(1.0, 2.0, 10.0)
        assert poisson_arrivals([], 1.0) == []
        assert uniform_arrivals([], 1.0) == []
        assert bursty_arrivals([], 3, 1.0) == []
        assert rate_schedule_arrivals([], schedule) == []
        assert diurnal_arrivals([], 1.0, 2.0, 10.0, 10.0) == []
        assert ramp_arrivals([], 1.0, 2.0, 10.0) == []

    def test_empty_streams_merge(self):
        assert merge_arrivals([], [], []) == []

    def test_parameter_validation_still_fires_on_empty(self):
        with pytest.raises(ValueError):
            poisson_arrivals([], 0.0)
        with pytest.raises(ValueError):
            uniform_arrivals([], -1.0)
        with pytest.raises(ValueError):
            bursty_arrivals([], 0, 1.0)

    def test_bursty_respects_start_offset(self):
        stream = bursty_arrivals(QUERIES, 4, 10.0, start_s=3.0)
        assert all(a.time_s >= 3.0 for a in stream)
        times = [a.time_s for a in stream]
        assert times == sorted(times)
