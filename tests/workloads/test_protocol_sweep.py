"""The measurement protocol wired through the PVC sweep (paper method)."""

import pytest

from repro.core.pvc.sweep import PvcSweep
from repro.hardware.cpu import PvcSetting, VoltageDowngrade
from repro.measurement.protocol import MeasurementProtocol
from repro.workloads.runner import WorkloadRunner
from repro.workloads.selection import selection_query


class TestProtocolSweep:
    def test_noisy_sweep_stays_close_to_exact(self, mysql_db, sut):
        """The 5-run trimmed mean bounds the noise the paper's method
        tolerates: ratios from a noisy sweep track the exact sweep."""
        runner = WorkloadRunner(mysql_db, sut)
        queries = [selection_query(1), selection_query(2)]
        exact = PvcSweep(runner, queries).run()
        noisy = PvcSweep(
            runner, queries,
            protocol=MeasurementProtocol(
                runs=5, noise_sigma=0.01, seed=123
            ),
        ).run()
        for exact_ratio, noisy_ratio in zip(
            exact.ratios(), noisy.ratios()
        ):
            assert noisy_ratio.energy_ratio == pytest.approx(
                exact_ratio.energy_ratio, abs=0.03
            )
            assert noisy_ratio.time_ratio == pytest.approx(
                exact_ratio.time_ratio, abs=0.03
            )

    def test_measure_at_single_setting(self, mysql_db, sut):
        runner = WorkloadRunner(mysql_db, sut)
        sweep = PvcSweep(runner, [selection_query(3)])
        point = sweep.measure_at(PvcSetting(5, VoltageDowngrade.MEDIUM))
        assert point.setting.underclock_pct == 5
        assert point.energy_j > 0
        # measure_at restores the previous setting
        assert sut.setting.is_stock

    def test_protocol_noise_does_not_flip_ordering(self, mysql_db, sut):
        """Even with noise, setting A (5%/medium) stays the best-EDP
        point -- the paper's Figure 1 conclusion is robust to its
        measurement method."""
        runner = WorkloadRunner(mysql_db, sut)
        noisy = PvcSweep(
            runner, [selection_query(4)],
            protocol=MeasurementProtocol(
                runs=5, noise_sigma=0.005, seed=7
            ),
        ).run()
        assert noisy.best_by_edp().setting == PvcSetting(
            5, VoltageDowngrade.MEDIUM
        )
