"""QED selection workload, client model, and the workload runner."""

import pytest

from repro.workloads.client import ClientModel
from repro.workloads.runner import WorkloadRunner
from repro.workloads.selection import (
    SELECTION_COLUMNS,
    SelectionWorkload,
    selection_query,
    selection_workload,
)


class TestSelectionWorkload:
    def test_query_text(self):
        sql = selection_query(7)
        assert "l_quantity = 7" in sql
        assert SELECTION_COLUMNS in sql

    def test_out_of_range_quantity(self):
        with pytest.raises(ValueError):
            selection_query(0)
        with pytest.raises(ValueError):
            selection_query(51)

    def test_workload_distinct_quantities(self):
        wl = selection_workload(35)
        assert wl.batch_size == 35
        assert len(set(wl.quantities)) == 35

    def test_workload_bounds(self):
        with pytest.raises(ValueError):
            selection_workload(51)
        with pytest.raises(ValueError):
            selection_workload(10, start=45)

    def test_duplicate_quantities_rejected(self):
        with pytest.raises(ValueError):
            SelectionWorkload((1, 1, 2))

    def test_two_percent_selectivity(self, mysql_db):
        """Each query returns ~2% of lineitem (paper Sec. 4)."""
        total = mysql_db.catalog.table("lineitem").row_count
        result = mysql_db.execute(selection_query(10))
        assert result.row_count / total == pytest.approx(0.02, abs=0.01)

    def test_queries_partition_lineitem(self, mysql_db):
        """All 50 quantities together cover every row exactly once."""
        total = mysql_db.catalog.table("lineitem").row_count
        covered = sum(
            mysql_db.execute(q).row_count
            for q in selection_workload(50).queries
        )
        assert covered == total


class TestClientModel:
    def test_fetch_scales_with_rows(self):
        client = ClientModel()
        small = client.fetch_work(100)
        large = client.fetch_work(10_000)
        assert large.cycles > small.cycles
        assert small.cycles > client.per_query_overhead_cycles

    def test_split_work(self):
        client = ClientModel()
        work = client.split_work(1000)
        assert work.cycles == 1000 * client.cycles_per_row_split

    def test_low_duty_cycle(self):
        assert ClientModel().utilization < 1.0


class TestWorkloadRunner:
    def test_per_query_completions_accumulate(self, mysql_db, sut):
        runner = WorkloadRunner(mysql_db, sut)
        queries = [selection_query(1), selection_query(2)]
        wm = runner.run_queries(queries)
        times = wm.completion_times_s
        assert len(times) == 2
        assert 0 < times[0] < times[1]
        assert times[1] == pytest.approx(wm.duration_s)

    def test_totals_equal_sum_of_parts(self, mysql_db, sut):
        runner = WorkloadRunner(mysql_db, sut)
        wm = runner.run_queries([selection_query(q) for q in (1, 2, 3)])
        assert wm.total.cpu_joules == pytest.approx(
            sum(m.cpu_joules for m in wm.per_query)
        )

    def test_client_work_included_by_default(self, mysql_db, sut):
        with_client = WorkloadRunner(mysql_db, sut)
        without = WorkloadRunner(mysql_db, sut, include_client_work=False)
        a = with_client.execute_query(selection_query(5))
        b = without.execute_query(selection_query(5))
        assert a.trace.total_client_cycles > 0
        assert b.trace.total_client_cycles == 0

    def test_empty_workload_rejected(self, mysql_db, sut):
        runner = WorkloadRunner(mysql_db, sut)
        with pytest.raises(ValueError):
            runner.run_queries([])

    def test_identical_queries_measure_identically(self, mysql_db, sut):
        runner = WorkloadRunner(mysql_db, sut)
        wm = runner.run_queries([selection_query(3), selection_query(3)])
        a, b = wm.per_query
        assert a.cpu_joules == pytest.approx(b.cpu_joules)
        assert a.duration_s == pytest.approx(b.duration_s)
