"""Execution-cache memory behavior: result eviction and the trace cache."""

import pytest

from repro.core.qed.aggregator import merge_queries
from repro.core.qed.executor import QedExecutor
from repro.db.profiles import mysql_profile
from repro.workloads.runner import TraceCache, WorkloadRunner
from repro.workloads.selection import selection_query
from repro.workloads.tpch.generator import tpch_database

REL = 1e-9


class TestResultEviction:
    QUERIES = [selection_query(1), selection_query(2)]

    def test_replay_evicts_result_rows(self, mysql_db, sut):
        runner = WorkloadRunner(mysql_db, sut)
        runner.replay_queries(self.QUERIES)
        for sql in self.QUERIES:
            _, execution = runner._execution_cache[sql]
            assert execution.result is None  # rows gone
            assert execution.compiled_trace() is not None  # replay intact

    def test_keep_result_recovers_after_eviction(self, mysql_db, sut):
        runner = WorkloadRunner(mysql_db, sut)
        sql = self.QUERIES[0]
        runner.cached_execution(sql, keep_result=False)
        misses = runner.execution_cache_misses
        recovered = runner.cached_execution(sql, keep_result=True)
        assert recovered.result is not None
        assert runner.execution_cache_misses == misses + 1  # re-executed

    def test_eviction_does_not_change_measurements(self, mysql_db, sut):
        keep = WorkloadRunner(mysql_db, sut)
        keep_m = keep.run_queries(self.QUERIES)
        evict = WorkloadRunner(mysql_db, sut)
        evict_m = evict.replay_queries(self.QUERIES)
        assert evict_m.duration_s == pytest.approx(
            keep_m.duration_s, rel=REL
        )
        assert evict_m.cpu_joules == pytest.approx(
            keep_m.cpu_joules, rel=REL
        )

    def test_qed_still_splits_after_a_replay_sweep(self, mysql_db, sut):
        """The splitter is the one result consumer; a sweep's evictions
        must not break a later QED comparison on the same runner."""
        runner = WorkloadRunner(mysql_db, sut)
        runner.replay_queries(self.QUERIES)
        comparison = QedExecutor(runner).compare(self.QUERIES)
        assert len(comparison.batched.split.results) == len(self.QUERIES)

    def test_release_is_idempotent_and_cached_entry_stays(
        self, mysql_db, sut
    ):
        runner = WorkloadRunner(mysql_db, sut)
        sql = self.QUERIES[0]
        first = runner.cached_execution(sql, keep_result=False)
        first.release_result()
        again = runner.cached_execution(sql, keep_result=False)
        assert again is first  # still a cache hit


class TestTraceCache:
    SQL = selection_query(3)

    def _db(self):
        return tpch_database(0.002, mysql_profile(), seed=0,
                             tables=["lineitem"])

    def test_second_process_skips_execution(self, sut, tmp_path):
        cache = TraceCache(tmp_path, namespace="sf0.002")
        db1 = self._db()
        runner1 = WorkloadRunner(db1, sut, trace_cache=cache)
        runner1.cached_execution(self.SQL, keep_result=False)
        assert db1.executions == 1
        assert cache.misses == 1

        # A fresh database/runner models a new process: the compiled
        # trace comes off disk, the database is never touched.
        db2 = self._db()
        runner2 = WorkloadRunner(db2, sut, trace_cache=cache)
        restored = runner2.cached_execution(self.SQL, keep_result=False)
        assert db2.executions == 0
        assert cache.hits == 1
        assert restored.result is None

        direct = runner1.cached_execution(self.SQL, keep_result=False)
        replayed_a = runner1.run_execution(direct)
        replayed_b = runner2.run_execution(restored)
        assert replayed_b.duration_s == replayed_a.duration_s
        assert replayed_b.wall_joules == replayed_a.wall_joules

    def test_keep_result_callers_bypass_disk_cache(self, sut, tmp_path):
        cache = TraceCache(tmp_path, namespace="sf0.002")
        WorkloadRunner(self._db(), sut, trace_cache=cache
                       ).cached_execution(self.SQL, keep_result=False)
        db = self._db()
        runner = WorkloadRunner(db, sut, trace_cache=cache)
        execution = runner.cached_execution(self.SQL, keep_result=True)
        assert db.executions == 1  # disk entry has no result rows
        assert execution.result is not None

    def test_generation_bump_bypasses_stale_disk_entry(
        self, sut, tmp_path
    ):
        """An in-process generation change (warm/cool/DDL) must force a
        fresh execution even when the old trace sits on disk."""
        from repro.db.profiles import commercial_profile

        cache = TraceCache(tmp_path, namespace="gen")
        db = tpch_database(0.002, commercial_profile(0.002), seed=0,
                           tables=["lineitem"])
        db.warm()
        runner = WorkloadRunner(db, sut, trace_cache=cache)
        warm_exec = runner.cached_execution(self.SQL, keep_result=False)
        db.cool()  # bumps the generation; disk entry is now stale
        cold_exec = runner.cached_execution(self.SQL, keep_result=False)
        assert db.executions == 2  # re-executed, not served from disk
        assert (
            cold_exec.compiled_trace().bytes_total.sum()
            > warm_exec.compiled_trace().bytes_total.sum()
        )

    def test_corrupt_entry_reads_as_miss_and_heals(self, sut, tmp_path):
        """A truncated/garbage .npz (crashed writer, torn copy) must
        come back as a miss -- and the bad file must be evicted so the
        recompute's put can heal it."""
        cache = TraceCache(tmp_path, namespace="corrupt")
        runner = WorkloadRunner(self._db(), sut, trace_cache=cache)
        runner.cached_execution(self.SQL, keep_result=False)
        key = runner._trace_key_prefix + self.SQL
        path = cache._path(key)
        assert path.exists()
        path.write_bytes(b"PK\x03\x04 this is not a real zip")
        misses = cache.misses
        assert cache.get(key) is None
        assert cache.misses == misses + 1
        assert not path.exists()  # evicted, not left to fail forever
        db = self._db()
        WorkloadRunner(db, sut, trace_cache=cache
                       ).cached_execution(self.SQL, keep_result=False)
        assert db.executions == 1  # recomputed ...
        db2 = self._db()
        WorkloadRunner(db2, sut, trace_cache=cache
                       ).cached_execution(self.SQL, keep_result=False)
        assert db2.executions == 0  # ... and the entry is whole again

    def test_put_is_atomic_leaves_no_temp_files(self, sut, tmp_path):
        cache = TraceCache(tmp_path, namespace="atomic")
        runner = WorkloadRunner(self._db(), sut, trace_cache=cache)
        runner.cached_execution(self.SQL, keep_result=False)
        leftovers = [p for p in tmp_path.iterdir()
                     if p.suffix != ".npz"]
        assert leftovers == []
        assert cache._path(runner._trace_key_prefix + self.SQL).exists()

    def test_namespaces_do_not_collide(self, sut, tmp_path):
        a = TraceCache(tmp_path, namespace="a")
        b = TraceCache(tmp_path, namespace="b")
        WorkloadRunner(self._db(), sut, trace_cache=a
                       ).cached_execution(self.SQL, keep_result=False)
        db = self._db()
        WorkloadRunner(db, sut, trace_cache=b
                       ).cached_execution(self.SQL, keep_result=False)
        assert db.executions == 1  # namespace b saw nothing from a
        db2 = self._db()
        WorkloadRunner(db2, sut, trace_cache=a
                       ).cached_execution(self.SQL, keep_result=False)
        assert db2.executions == 0  # same namespace hits

    def test_client_model_config_keys_the_cache(self, sut, tmp_path):
        """Persisted traces embed client work; a runner with a
        different client configuration must not inherit them."""
        from repro.workloads.client import ClientModel

        cache = TraceCache(tmp_path, namespace="c")
        WorkloadRunner(self._db(), sut, trace_cache=cache
                       ).cached_execution(self.SQL, keep_result=False)
        db = self._db()
        other = WorkloadRunner(
            db, sut, client=ClientModel(cycles_per_row_fetch=999.0),
            trace_cache=cache,
        )
        other.cached_execution(self.SQL, keep_result=False)
        assert db.executions == 1  # re-executed under its own client

    def test_qed_merged_statement_roundtrips(self, sut, tmp_path):
        """Merged disjunctive statements cache like any other SQL."""
        cache = TraceCache(tmp_path, namespace="m")
        merged = merge_queries([selection_query(1), selection_query(2)])
        runner = WorkloadRunner(self._db(), sut, trace_cache=cache)
        runner.cached_execution(merged.sql, keep_result=False)
        db = self._db()
        restored = WorkloadRunner(db, sut, trace_cache=cache)
        restored.cached_execution(merged.sql, keep_result=False)
        assert db.executions == 0  # served from disk
