"""Q10 and the Q14-style promo query (exercises LIKE + bigger joins)."""

import pytest

from repro.db.profiles import mysql_profile
from repro.db.engine import Database
from repro.workloads.tpch.generator import load_tpch
from repro.workloads.tpch.queries import q10, q14_promo


@pytest.fixture(scope="module")
def full_db() -> Database:
    db = Database(mysql_profile())
    load_tpch(db, 0.01, seed=0)
    return db


class TestQ10:
    def test_executes_and_limits(self, full_db):
        result = full_db.execute(q10())
        assert result.row_count <= 20
        assert result.names == [
            "c_custkey", "c_name", "revenue", "c_acctbal", "n_name",
        ]

    def test_revenue_descending(self, full_db):
        revenues = [r[2] for r in full_db.execute(q10()).rows()]
        assert revenues == sorted(revenues, reverse=True)

    def test_only_returned_items_counted(self, full_db):
        """Every revenue row stems from l_returnflag = 'R' lines."""
        result = full_db.execute(q10(limit=5))
        li = full_db.catalog.table("lineitem")
        orders = full_db.catalog.table("orders")
        o_cust = dict(zip(orders.column("o_orderkey").raw().tolist(),
                          orders.column("o_custkey").raw().tolist()))
        flags = li.column("l_returnflag")
        flag_r = flags.code_for("R")
        custkeys_with_r = {
            o_cust[ok]
            for ok, code in zip(li.column("l_orderkey").raw().tolist(),
                                flags.raw().tolist())
            if code == flag_r
        }
        for row in result.rows():
            assert row[0] in custkeys_with_r


class TestPromo:
    def test_executes(self, full_db):
        result = full_db.execute(q14_promo())
        assert result.row_count == 1

    def test_matches_manual(self, full_db):
        from repro.db.types import date_to_days
        got = full_db.execute(
            q14_promo("1995-09-01", "1995-10-01")
        ).scalar()
        part = full_db.catalog.table("part")
        types = part.column("p_type")
        promo_parts = {
            key for key, code in zip(
                part.column("p_partkey").raw().tolist(),
                types.raw().tolist(),
            )
            if types.dictionary[code].startswith("PROMO")
        }
        li = full_db.catalog.table("lineitem")
        lo = date_to_days("1995-09-01")
        hi = date_to_days("1995-10-01")
        expected = 0.0
        ship = li.column("l_shipdate").raw()
        pk = li.column("l_partkey").raw()
        price = li.column("l_extendedprice").raw()
        disc = li.column("l_discount").raw()
        for i in range(li.row_count):
            if lo <= ship[i] < hi and pk[i] in promo_parts:
                expected += price[i] * (1 - disc[i])
        assert got == pytest.approx(expected, rel=1e-9)

    def test_like_pushdown_in_plan(self, full_db):
        text = full_db.explain(q14_promo())
        assert "LIKE 'PROMO%'" in text
