"""Columnar trace store: roundtrips, crash-safety, shared readers."""

import json
import threading

import numpy as np
import pytest

from repro.db.profiles import mysql_profile
from repro.hardware.trace import (
    CompiledTrace,
    CpuWork,
    DiskAccess,
    Idle,
    ROW_DTYPE,
    Trace,
)
from repro.hardware.trace_store import ColumnarTraceStore
from repro.workloads.runner import TraceCache, WorkloadRunner
from repro.workloads.selection import selection_query
from repro.workloads.tpch.generator import tpch_database


def make_trace(seed: int = 0) -> CompiledTrace:
    """A distinctive little mixed-kind trace per seed."""
    return Trace([
        CpuWork(1e6 * (seed + 1), utilization=0.8, label=f"cpu{seed}"),
        DiskAccess(10 + seed, 4096.0 * (seed + 1), sequential=seed % 2 == 0,
                   write=seed % 3 == 0, label=f"disk{seed}"),
        Idle(0.01 * (seed + 1), label=f"idle{seed}"),
    ]).compiled()


def assert_traces_equal(a: CompiledTrace, b: CompiledTrace) -> None:
    assert a.labels == b.labels
    for field in ("kinds", "cycles", "utilization", "num_ops",
                  "bytes_total", "sequential", "write", "seconds"):
        np.testing.assert_array_equal(getattr(a, field),
                                      getattr(b, field))


class TestRowFormat:
    def test_to_rows_from_rows_roundtrip(self):
        compiled = make_trace(3)
        rows = compiled.to_rows()
        assert rows.dtype == ROW_DTYPE
        assert len(rows) == len(compiled)
        back = CompiledTrace.from_rows(rows, compiled.labels)
        assert_traces_equal(compiled, back)

    def test_from_rows_is_zero_copy(self):
        compiled = make_trace(1)
        rows = compiled.to_rows()
        back = CompiledTrace.from_rows(rows, compiled.labels)
        assert back.cycles.base is rows

    def test_from_rows_rejects_label_mismatch(self):
        compiled = make_trace(0)
        with pytest.raises(ValueError, match="label count"):
            CompiledTrace.from_rows(compiled.to_rows(), ("only-one",))


class TestColumnarTraceStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ColumnarTraceStore(tmp_path, namespace="rt")
        compiled = make_trace(0)
        store.put("q0", compiled)
        assert "q0" in store
        assert len(store) == 1
        assert_traces_equal(store.get("q0"), compiled)
        assert store.get("missing") is None

    def test_get_is_a_view_of_the_mapped_container(self, tmp_path):
        store = ColumnarTraceStore(tmp_path, namespace="mm")
        store.put("q0", make_trace(0))
        loaded = store.get("q0")
        # Field views share the memmap's buffer: one physical copy per
        # machine, not one per (node, process).
        import mmap

        root = loaded.cycles
        while isinstance(root, np.ndarray) and root.base is not None:
            root = root.base
        assert isinstance(root, (np.memmap, mmap.mmap))

    def test_entries_visible_to_a_fresh_store(self, tmp_path):
        ColumnarTraceStore(tmp_path, namespace="p").put(
            "q0", make_trace(0)
        )
        again = ColumnarTraceStore(tmp_path, namespace="p")
        assert_traces_equal(again.get("q0"), make_trace(0))

    def test_first_writer_wins(self, tmp_path):
        store = ColumnarTraceStore(tmp_path, namespace="fw")
        store.put("q", make_trace(0))
        store.put("q", make_trace(5))  # silently ignored
        assert_traces_equal(store.get("q"), make_trace(0))
        assert len(store) == 1

    def test_namespaces_use_separate_containers(self, tmp_path):
        a = ColumnarTraceStore(tmp_path, namespace="a")
        b = ColumnarTraceStore(tmp_path, namespace="b")
        a.put("q", make_trace(0))
        assert a.rows_path != b.rows_path
        assert b.get("q") is None
        assert "q" not in b

    def test_many_entries_span_the_container(self, tmp_path):
        store = ColumnarTraceStore(tmp_path, namespace="many")
        for i in range(20):
            store.put(f"q{i}", make_trace(i))
        reader = ColumnarTraceStore(tmp_path, namespace="many")
        for i in range(20):
            assert_traces_equal(reader.get(f"q{i}"), make_trace(i))

    def test_corrupt_index_reads_as_miss_and_put_recovers(self, tmp_path):
        store = ColumnarTraceStore(tmp_path, namespace="ci")
        store.put("q0", make_trace(0))
        store.index_path.write_text("{ not json")
        fresh = ColumnarTraceStore(tmp_path, namespace="ci")
        assert fresh.get("q0") is None  # miss, not a crash
        fresh.put("q1", make_trace(1))
        assert_traces_equal(fresh.get("q1"), make_trace(1))

    def test_foreign_format_index_is_ignored(self, tmp_path):
        store = ColumnarTraceStore(tmp_path, namespace="ff")
        store.index_path.write_text(json.dumps(
            {"format": "something-else", "entries": {"x": {}}}
        ))
        assert len(store) == 0
        assert store.get("x") is None

    def test_span_past_container_end_is_a_miss(self, tmp_path):
        """An index pointing beyond the data (e.g. rows lost to a torn
        copy) must read as a miss, never as garbage rows."""
        store = ColumnarTraceStore(tmp_path, namespace="oob")
        store.put("q0", make_trace(0))
        doc = json.loads(store.index_path.read_text())
        for entry in doc["entries"].values():
            entry["offset"] += 1000
        store.index_path.write_text(json.dumps(doc))
        fresh = ColumnarTraceStore(tmp_path, namespace="oob")
        assert fresh.get("q0") is None

    def test_torn_trailing_append_is_truncated_by_next_put(
        self, tmp_path
    ):
        store = ColumnarTraceStore(tmp_path, namespace="torn")
        store.put("q0", make_trace(0))
        intact = store.rows_path.stat().st_size
        with open(store.rows_path, "ab") as f:
            f.write(b"\x01\x02\x03")  # partial row: writer died mid-append
        # Published entries still read fine (the tail is unreferenced).
        assert_traces_equal(
            ColumnarTraceStore(tmp_path, namespace="torn").get("q0"),
            make_trace(0),
        )
        store2 = ColumnarTraceStore(tmp_path, namespace="torn")
        store2.put("q1", make_trace(1))
        assert store2.rows_path.stat().st_size % ROW_DTYPE.itemsize == 0
        assert store2.rows_path.stat().st_size > intact
        assert_traces_equal(store2.get("q0"), make_trace(0))
        assert_traces_equal(store2.get("q1"), make_trace(1))

    def test_concurrent_writers_and_readers(self, tmp_path):
        """Threaded writers (distinct keys) race readers on one
        namespace; every published entry must always read back whole."""
        n_writers, per_writer = 4, 8
        errors: list[BaseException] = []
        stop = threading.Event()

        def write(w: int) -> None:
            try:
                store = ColumnarTraceStore(tmp_path, namespace="race")
                for i in range(per_writer):
                    store.put(f"w{w}-q{i}", make_trace(w * per_writer + i))
            except BaseException as exc:  # pragma: no cover - fail loud
                errors.append(exc)

        def read() -> None:
            try:
                store = ColumnarTraceStore(tmp_path, namespace="race")
                while not stop.is_set():
                    for digest_free_key in list(store.keys_digests()):
                        pass  # index snapshots must never raise
                    for w in range(n_writers):
                        for i in range(per_writer):
                            loaded = store.get(f"w{w}-q{i}")
                            if loaded is not None:
                                assert_traces_equal(
                                    loaded,
                                    make_trace(w * per_writer + i),
                                )
            except BaseException as exc:  # pragma: no cover - fail loud
                errors.append(exc)

        readers = [threading.Thread(target=read) for _ in range(2)]
        writers = [
            threading.Thread(target=write, args=(w,))
            for w in range(n_writers)
        ]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert not errors
        final = ColumnarTraceStore(tmp_path, namespace="race")
        assert len(final) == n_writers * per_writer
        for w in range(n_writers):
            for i in range(per_writer):
                assert_traces_equal(
                    final.get(f"w{w}-q{i}"),
                    make_trace(w * per_writer + i),
                )


class TestColumnarTraceCache:
    SQL = selection_query(4)

    def _db(self):
        return tpch_database(0.002, mysql_profile(), seed=0,
                             tables=["lineitem"])

    def test_for_workload_columnar_backend(self, tmp_path):
        cache = TraceCache.for_workload(
            tmp_path, "mysql", 0.002, seed=0, tables=("lineitem",),
            columnar=True,
        )
        from repro.workloads.runner import ColumnarTraceCache

        assert isinstance(cache, ColumnarTraceCache)
        npz = TraceCache.for_workload(
            tmp_path, "mysql", 0.002, seed=0, tables=("lineitem",)
        )
        assert npz.namespace == cache.namespace

    def test_second_process_skips_execution(self, sut, tmp_path):
        cache = TraceCache.for_workload(
            tmp_path, "mysql", 0.002, seed=0, tables=("lineitem",),
            columnar=True,
        )
        db1 = self._db()
        WorkloadRunner(db1, sut, trace_cache=cache).cached_execution(
            self.SQL, keep_result=False
        )
        assert db1.executions == 1
        assert cache.misses == 1

        db2 = self._db()
        fresh = TraceCache.for_workload(
            tmp_path, "mysql", 0.002, seed=0, tables=("lineitem",),
            columnar=True,
        )
        restored = WorkloadRunner(
            db2, sut, trace_cache=fresh
        ).cached_execution(self.SQL, keep_result=False)
        assert db2.executions == 0
        assert fresh.hits == 1
        assert restored.result is None

    def test_cluster_simulator_runs_on_columnar_cache(
        self, mysql_db, sut, tmp_path
    ):
        from repro.cluster import (
            ClusterSimulator,
            RoundRobinRouter,
            uniform_fleet,
        )
        from repro.workloads.arrivals import poisson_arrivals

        cache = TraceCache(tmp_path, namespace="sim")
        columnar = __import__(
            "repro.workloads.runner", fromlist=["ColumnarTraceCache"]
        ).ColumnarTraceCache(tmp_path, namespace="sim-col")
        queries = [selection_query(i) for i in range(1, 5)]
        stream = poisson_arrivals(
            [queries[i % 4] for i in range(40)], 0.05, seed=3
        )
        baseline = ClusterSimulator(
            mysql_db, uniform_fleet(2), RoundRobinRouter(),
            trace_cache=cache,
        ).run(stream)
        via_columnar = ClusterSimulator(
            mysql_db, uniform_fleet(2), RoundRobinRouter(),
            trace_cache=columnar,
        ).run(stream)
        assert via_columnar.wall_joules == pytest.approx(
            baseline.wall_joules, rel=1e-9
        )
        assert columnar.misses > 0
        # A second simulator over the same columnar store replays from
        # the shared container.
        again = ClusterSimulator(
            mysql_db, uniform_fleet(2), RoundRobinRouter(),
            trace_cache=columnar,
        ).run(stream)
        assert again.wall_joules == pytest.approx(
            baseline.wall_joules, rel=1e-9
        )
        assert columnar.hits > 0
